// Example: the full model-in-the-loop scheduling workflow (paper §VII) at
// demo scale — build dataset, train the predictor, sample a job stream,
// and compare all machine-assignment strategies under FCFS+EASY.
//
//   ./scheduling_demo [num_jobs]   (default: 10000)
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "arch/system_catalog.hpp"
#include "common/table_printer.hpp"
#include "common/thread_pool.hpp"
#include "core/dataset.hpp"
#include "core/predictor.hpp"
#include "sched/easy_scheduler.hpp"
#include "sched/workload_gen.hpp"
#include "sim/runner.hpp"
#include "workload/app_catalog.hpp"

int main(int argc, char** argv) {
  using namespace mphpc;

  const std::size_t num_jobs = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 10000;

  const workload::AppCatalog apps;
  const arch::SystemCatalog systems;
  ThreadPool& pool = ThreadPool::shared();

  sim::CampaignOptions campaign;
  campaign.inputs_per_app = 12;  // demo-size dataset
  const auto dataset =
      core::build_dataset(sim::run_campaign(apps, systems, campaign, &pool));

  core::CrossArchPredictor::Options options;
  options.gbt.n_rounds = 150;
  options.gbt.max_depth = 6;
  core::CrossArchPredictor predictor(options);
  predictor.train(dataset, {}, &pool);

  const auto predictions = predictor.predict(dataset.features());
  const auto jobs = sched::sample_jobs(dataset, predictions, apps, num_jobs, 2026);
  const auto machines = sched::default_cluster(systems);
  std::printf("scheduling %zu jobs over %zu machines (FCFS+EASY)\n\n", jobs.size(),
              machines.size());

  struct Entry {
    const char* label;
    std::unique_ptr<sched::MachineAssigner> assigner;
  };
  std::vector<Entry> entries;
  entries.push_back({"Round-Robin", std::make_unique<sched::RoundRobinAssigner>()});
  entries.push_back({"Random", std::make_unique<sched::RandomAssigner>(5)});
  entries.push_back({"User+RR", std::make_unique<sched::UserRoundRobinAssigner>()});
  entries.push_back({"Model-based", std::make_unique<sched::ModelBasedAssigner>()});
  entries.push_back({"Oracle (true times)", std::make_unique<sched::OracleAssigner>()});

  TablePrinter table({"strategy", "makespan (h)", "avg bounded slowdown"});
  double baseline = 0.0;
  for (auto& entry : entries) {
    const auto result = sched::simulate(jobs, machines, *entry.assigner);
    if (baseline == 0.0) baseline = result.makespan_s;
    char makespan[32];
    char slowdown[32];
    std::snprintf(makespan, sizeof makespan, "%.3f", result.makespan_s / 3600.0);
    std::snprintf(slowdown, sizeof slowdown, "%.2f", result.avg_bounded_slowdown);
    table.add_row({entry.label, makespan, slowdown});
  }
  table.print();

  std::printf("\nthe Model-based strategy routes each job to its predicted-"
              "fastest machine,\nfalling back to the next-fastest while that "
              "machine is full (paper Alg. 2).\n");
  return 0;
}
