// Example: the "what-if porting" use case from paper §VIII-B — estimate
// the speedup an application would see on an architecture it cannot run on
// today, from counters collected on a cheap CPU system.
//
// Here we profile the CPU-only applications on Quartz (the cheapest, most
// available system) and ask the model what their relative performance
// across all four systems would be — e.g., what a Corona (AMD GPU) port
// might buy, without having access to (or a port for) that machine.
#include <cstdio>

#include "arch/system_catalog.hpp"
#include "common/table_printer.hpp"
#include "common/thread_pool.hpp"
#include "core/dataset.hpp"
#include "core/predictor.hpp"
#include "data/split.hpp"
#include "sim/runner.hpp"
#include "workload/app_catalog.hpp"

int main() {
  using namespace mphpc;

  const workload::AppCatalog apps;
  const arch::SystemCatalog systems;
  ThreadPool& pool = ThreadPool::shared();

  // Train the predictor once on the standard (reduced-size) dataset.
  sim::CampaignOptions campaign;
  campaign.inputs_per_app = 12;
  const auto dataset =
      core::build_dataset(sim::run_campaign(apps, systems, campaign, &pool));
  core::CrossArchPredictor::Options options;
  options.gbt.n_rounds = 150;
  options.gbt.max_depth = 6;
  core::CrossArchPredictor predictor(options);
  predictor.train(dataset, {}, &pool);

  // Persist + reload, as a deployment would.
  const std::string model_path = "/tmp/mphpc_whatif_model.txt";
  predictor.save(model_path);
  const auto deployed = core::CrossArchPredictor::load(model_path);
  std::printf("model trained and reloaded from %s\n\n", model_path.c_str());

  const sim::Profiler profiler(4242);
  TablePrinter table({"application", "time on quartz (s)", "pred. vs ruby",
                      "pred. vs lassen", "pred. vs corona", "pred. fastest"});
  for (const auto& app : apps.all()) {
    if (app.gpu_support) continue;  // "cannot run on the GPU systems today"
    const auto inputs = workload::make_inputs(app, 1, 4242);
    const auto profile = profiler.profile(app, inputs[0],
                                          workload::ScaleClass::kOneNode,
                                          systems.get("quartz"));
    const core::Rpv rpv = deployed.predict(profile);
    char time_s[32];
    std::snprintf(time_s, sizeof time_s, "%.1f", profile.time_s);
    const auto speedup_cell = [&](arch::SystemId id) {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.2fx", rpv.speedup(id));
      return std::string(buf);
    };
    table.add_row({app.name, time_s, speedup_cell(arch::SystemId::kRuby),
                   speedup_cell(arch::SystemId::kLassen),
                   speedup_cell(arch::SystemId::kCorona),
                   std::string(arch::to_string(rpv.fastest()))});
  }
  table.print();

  std::printf("\nspeedups are the model's predicted relative performance "
              "(reciprocal time ratios)\nfrom quartz-side counters only — no "
              "run on the target systems required.\n");
  return 0;
}
