// Quickstart: build the MP-HPC dataset, train the cross-architecture
// predictor, evaluate it on held-out runs, and predict the RPV of a new
// profile.
//
//   ./quickstart [inputs_per_app]
//
// With the default 47 inputs per application the dataset has
// 20 apps x 47 inputs x 3 scales x 4 systems = 11,280 rows (paper: 11,312).
#include <cstdio>
#include <cstdlib>

#include "arch/system_catalog.hpp"
#include "common/thread_pool.hpp"
#include "common/timer.hpp"
#include "core/dataset.hpp"
#include "core/model_selection.hpp"
#include "core/predictor.hpp"
#include "data/split.hpp"
#include "sim/runner.hpp"
#include "workload/app_catalog.hpp"

int main(int argc, char** argv) {
  using namespace mphpc;

  sim::CampaignOptions campaign;
  if (argc > 1) campaign.inputs_per_app = std::atoi(argv[1]);

  const workload::AppCatalog apps;
  const arch::SystemCatalog systems;
  ThreadPool& pool = ThreadPool::shared();

  // 1. Data collection: profile every (app, input) on all four systems at
  //    three resource scales.
  Timer timer;
  const auto profiles = sim::run_campaign(apps, systems, campaign, &pool);
  std::printf("collected %zu profiles in %.1f s\n", profiles.size(), timer.seconds());

  // 2. Dataset assembly: derived features + RPV targets.
  timer.reset();
  const core::Dataset dataset = core::build_dataset(profiles);
  std::printf("dataset: %zu rows x %zu feature columns (%.1f s)\n",
              dataset.num_rows(), core::FeaturePipeline::kNumFeatures,
              timer.seconds());

  // 3. Train the predictor on a 90/10 split.
  const auto split = data::train_test_split(dataset.num_rows(), 0.10, 42);
  timer.reset();
  core::CrossArchPredictor predictor;
  predictor.train(dataset, split.train, &pool);
  std::printf("trained XGBoost-style model on %zu rows (%.1f s)\n",
              split.train.size(), timer.seconds());

  // 4. Evaluate on the held-out 10%.
  const ml::Matrix x_test = dataset.features(split.test);
  const ml::Matrix y_test = dataset.targets(split.test);
  const auto metrics = core::evaluate(y_test, predictor.predict(x_test));
  std::printf("test MAE  = %.4f   (paper: 0.11)\n", metrics.mae);
  std::printf("test SOS  = %.4f   (paper: 0.86)\n", metrics.sos);
  std::printf("test RMSE = %.4f, R^2 = %.4f\n", metrics.rmse, metrics.r2);

  // 5. Predict the RPV of a freshly profiled run from one architecture.
  const sim::Profiler profiler(999);
  const auto& app = apps.get("CoMD");
  const auto inputs = workload::make_inputs(app, 1, 999);
  const sim::RunProfile fresh = profiler.profile(
      app, inputs[0], workload::ScaleClass::kOneNode, systems.get("quartz"));
  const core::Rpv rpv = predictor.predict(fresh);
  std::printf("\nCoMD one-node run profiled on quartz -> predicted RPV:\n");
  for (const arch::SystemId id : arch::kAllSystems) {
    std::printf("  %-7s time ratio %.3f (speedup vs quartz: %.2fx)\n",
                std::string(arch::to_string(id)).c_str(), rpv.time_ratio(id),
                rpv.speedup(id));
  }
  std::printf("predicted fastest system: %s\n",
              std::string(arch::to_string(rpv.fastest())).c_str());
  return 0;
}
