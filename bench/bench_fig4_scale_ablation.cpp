// Regenerates paper Figure 4: XGBoost trained on two of the three resource
// scales (1 core, 1 node, 2 nodes) and evaluated on the held-out third.
// The paper finds all three evaluate near MAE 0.11, 1-node slightly best.
#include "bench_common.hpp"

#include "data/split.hpp"
#include "ml/metrics.hpp"

int main() {
  using namespace mphpc;
  bench::print_header("Figure 4", "Leave-one-resource-scale-out MAE (XGBoost)");

  const core::Dataset ds = bench::build_standard_dataset();
  const auto x = ds.features();
  const auto y = ds.targets();
  const auto& scales = ds.scales();

  TablePrinter table({"held-out scale", "MAE", "SOS", "train rows", "test rows"});
  JsonWriter json;
  json.begin_object().field("experiment", "fig4").begin_array("scales");
  Timer timer;
  for (const workload::ScaleClass scale : workload::kAllScaleClasses) {
    const auto split = data::group_holdout(scales, workload::to_string(scale));
    ml::GbtRegressor model(bench::ablation_gbt_options());
    model.fit(x.select_rows(split.train), y.select_rows(split.train),
              &ThreadPool::shared());
    const auto y_test = y.select_rows(split.test);
    const auto pred = model.predict(x.select_rows(split.test));
    const double mae = ml::mean_absolute_error(y_test, pred);
    const double sos = ml::same_order_score(y_test, pred);
    table.add_row({std::string(workload::to_string(scale)), format_fixed(mae, 4),
                   format_fixed(sos, 4), std::to_string(split.train.size()),
                   std::to_string(split.test.size())});
    json.begin_object()
        .field("scale", workload::to_string(scale))
        .field("mae", mae)
        .field("sos", sos)
        .end_object();
  }
  json.end_array().field("seconds", timer.seconds()).end_object();
  table.print();
  std::printf("\n(paper: all three near 0.11 MAE, 1-node best; our substrate's one-core\nregime is qualitatively distinct, so extrapolating to held-out small scales\nfails here — see EXPERIMENTS.md F4)\n");
  std::printf("elapsed: %.1f s\n", timer.seconds());
  bench::print_json_line(json);
  return 0;
}
