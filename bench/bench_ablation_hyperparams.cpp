// Design-choice ablation (DESIGN.md A2): how the headline MAE responds to
// the main GBT hyper-parameters (rounds, depth, learning rate, objective)
// and to forest size — evidence for the configuration shipped as default.
#include "bench_common.hpp"

#include "data/split.hpp"
#include "ml/metrics.hpp"
#include "ml/random_forest.hpp"

int main() {
  using namespace mphpc;
  bench::print_header("Ablation", "GBT / forest hyper-parameter sensitivity");

  const core::Dataset ds = bench::build_standard_dataset();
  const auto x = ds.features();
  const auto y = ds.targets();
  const auto split = data::train_test_split(x.rows(), 0.10, 42);
  const auto x_train = x.select_rows(split.train);
  const auto y_train = y.select_rows(split.train);
  const auto x_test = x.select_rows(split.test);
  const auto y_test = y.select_rows(split.test);

  TablePrinter table({"config", "MAE", "SOS", "fit (s)"});
  JsonWriter json;
  json.begin_object().field("experiment", "hyperparams").begin_array("configs");

  const auto eval_gbt = [&](const char* label, const ml::GbtOptions& options) {
    Timer timer;
    ml::GbtRegressor model(options);
    model.fit(x_train, y_train, &ThreadPool::shared());
    const double fit_s = timer.seconds();
    const auto pred = model.predict(x_test);
    const double mae = ml::mean_absolute_error(y_test, pred);
    const double sos = ml::same_order_score(y_test, pred);
    table.add_row({label, format_fixed(mae, 4), format_fixed(sos, 4),
                   format_fixed(fit_s, 1)});
    json.begin_object()
        .field("config", label)
        .field("mae", mae)
        .field("sos", sos)
        .field("fit_seconds", fit_s)
        .end_object();
  };

  {
    ml::GbtOptions o;  // shipped default
    eval_gbt("gbt default (r400 d8 lr0.1 sq)", o);
  }
  {
    ml::GbtOptions o;
    o.n_rounds = 100;
    eval_gbt("gbt r100", o);
  }
  {
    ml::GbtOptions o;
    o.max_depth = 4;
    eval_gbt("gbt depth 4", o);
  }
  {
    ml::GbtOptions o;
    o.learning_rate = 0.3;
    o.n_rounds = 150;
    eval_gbt("gbt lr 0.3 r150", o);
  }
  {
    ml::GbtOptions o;
    o.objective = ml::GbtObjective::kPseudoHuber;
    eval_gbt("gbt pseudo-huber", o);
  }
  {
    ml::GbtOptions o;
    o.subsample = 1.0;
    eval_gbt("gbt no row sampling", o);
  }

  const auto eval_forest = [&](const char* label, const ml::ForestOptions& options) {
    Timer timer;
    ml::RandomForest model(options);
    model.fit(x_train, y_train, &ThreadPool::shared());
    const double fit_s = timer.seconds();
    const auto pred = model.predict(x_test);
    table.add_row({label, format_fixed(ml::mean_absolute_error(y_test, pred), 4),
                   format_fixed(ml::same_order_score(y_test, pred), 4),
                   format_fixed(fit_s, 1)});
  };
  {
    ml::ForestOptions o;  // comparator default (100 trees, sqrt mtry)
    eval_forest("forest default (100 trees)", o);
  }
  {
    ml::ForestOptions o;
    o.n_trees = 25;
    eval_forest("forest 25 trees", o);
  }

  json.end_array().end_object();
  table.print();
  bench::print_json_line(json);
  return 0;
}
