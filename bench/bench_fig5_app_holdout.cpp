// Regenerates paper Figure 5: XGBoost trained on all applications but one,
// evaluated on the held-out application. The paper finds the ML/Python
// workloads (CANDLE, CosmoFlow, miniGAN, DeepCam) hardest to predict.
#include <algorithm>

#include "bench_common.hpp"

#include "data/split.hpp"
#include "ml/metrics.hpp"

int main() {
  using namespace mphpc;
  bench::print_header("Figure 5", "Leave-one-application-out MAE (XGBoost)");

  const core::Dataset ds = bench::build_standard_dataset();
  const workload::AppCatalog apps;
  const auto x = ds.features();
  const auto y = ds.targets();
  const auto& app_col = ds.apps();

  struct Row {
    std::string app;
    bool python;
    double mae;
    double sos;
  };
  std::vector<Row> rows;
  Timer timer;
  for (const auto& app : apps.all()) {
    const auto split = data::group_holdout(app_col, app.name);
    ml::GbtRegressor model(bench::ablation_gbt_options());
    model.fit(x.select_rows(split.train), y.select_rows(split.train),
              &ThreadPool::shared());
    const auto y_test = y.select_rows(split.test);
    const auto pred = model.predict(x.select_rows(split.test));
    rows.push_back({app.name, app.python_stack,
                    ml::mean_absolute_error(y_test, pred),
                    ml::same_order_score(y_test, pred)});
    std::printf("  [%2zu/20] %-14s MAE=%.4f\n", rows.size(), app.name.c_str(),
                rows.back().mae);
  }

  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.mae > b.mae; });
  std::printf("\n");
  TablePrinter table({"held-out app", "MAE", "SOS", "ML/Python stack"});
  JsonWriter json;
  json.begin_object().field("experiment", "fig5").begin_array("apps");
  for (const auto& r : rows) {
    table.add_row({r.app, format_fixed(r.mae, 4), format_fixed(r.sos, 4),
                   r.python ? "yes" : ""});
    json.begin_object()
        .field("app", r.app)
        .field("mae", r.mae)
        .field("sos", r.sos)
        .field("python", r.python)
        .end_object();
  }
  json.end_array().field("seconds", timer.seconds()).end_object();
  table.print();

  // Paper check: the Python/ML apps should cluster at the hard end.
  double python_mean = 0.0;
  double native_mean = 0.0;
  int n_python = 0;
  for (const auto& r : rows) {
    if (r.python) {
      python_mean += r.mae;
      ++n_python;
    } else {
      native_mean += r.mae;
    }
  }
  python_mean /= n_python;
  native_mean /= static_cast<double>(rows.size() - n_python);
  std::printf("\nmean held-out MAE: ML/Python apps %.4f vs native apps %.4f "
              "(paper: ML apps notably worse)\n", python_mean, native_mean);
  std::printf("elapsed: %.1f s\n", timer.seconds());
  bench::print_json_line(json);
  return 0;
}
