// Infrastructure micro-benchmarks (google-benchmark): simulator run rate,
// dataset assembly, model fit/predict throughput, scheduler event rate.
#include <benchmark/benchmark.h>

#include "arch/system_catalog.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "core/dataset.hpp"
#include "core/predictor.hpp"
#include "ml/gbt.hpp"
#include "ml/random_forest.hpp"
#include "sched/easy_scheduler.hpp"
#include "sched/workload_gen.hpp"
#include "sim/runner.hpp"
#include "workload/app_catalog.hpp"

namespace {

using namespace mphpc;

const workload::AppCatalog& apps() {
  static const workload::AppCatalog catalog;
  return catalog;
}

const arch::SystemCatalog& systems() {
  static const arch::SystemCatalog catalog;
  return catalog;
}

// One simulated profile (analytic model + counter synthesis).
void BM_ProfileOneRun(benchmark::State& state) {
  const sim::Profiler profiler(1);
  const auto& app = apps().get("CoMD");
  const auto inputs = workload::make_inputs(app, 1, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(profiler.profile(
        app, inputs[0], workload::ScaleClass::kOneNode, systems().get("lassen")));
  }
}
BENCHMARK(BM_ProfileOneRun);

// Full campaign sweep at a reduced size, per-run rate reported.
void BM_Campaign(benchmark::State& state) {
  sim::CampaignOptions options;
  options.inputs_per_app = static_cast<int>(state.range(0));
  std::size_t runs = 0;
  for (auto _ : state) {
    const auto profiles = sim::run_campaign(apps(), systems(), options);
    runs += profiles.size();
    benchmark::DoNotOptimize(profiles.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(runs));
}
BENCHMARK(BM_Campaign)->Arg(2)->Arg(8);

// Dataset assembly from a fixed campaign.
void BM_BuildDataset(benchmark::State& state) {
  sim::CampaignOptions options;
  options.inputs_per_app = 8;
  const auto profiles = sim::run_campaign(apps(), systems(), options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::build_dataset(profiles).num_rows());
  }
}
BENCHMARK(BM_BuildDataset);

struct FitFixture {
  ml::Matrix x;
  ml::Matrix y;

  static const FitFixture& get() {
    static const FitFixture f = [] {
      sim::CampaignOptions options;
      options.inputs_per_app = 6;
      const auto ds = core::build_dataset(run_campaign(apps(), systems(), options));
      return FitFixture{ds.features(), ds.targets()};
    }();
    return f;
  }
};

void BM_GbtFit(benchmark::State& state) {
  const auto& f = FitFixture::get();
  ml::GbtOptions options;
  options.n_rounds = static_cast<int>(state.range(0));
  options.max_depth = 6;
  for (auto _ : state) {
    ml::GbtRegressor model(options);
    model.fit(f.x, f.y);
    benchmark::DoNotOptimize(model.fitted());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 4);
}
BENCHMARK(BM_GbtFit)->Arg(20)->Arg(50)->Unit(benchmark::kMillisecond);

// Split-search method comparison on the full counter feature set: the
// paper-scale fit (200 rounds, default depth/subsampling) is the tracked
// configuration for the histogram-vs-exact trajectory (BENCH_gbt.json).
struct MethodFixture {
  ml::Matrix x;
  ml::Matrix y;

  static const MethodFixture& get() {
    static const MethodFixture f = [] {
      sim::CampaignOptions options;
      options.inputs_per_app = 24;
      const auto ds = core::build_dataset(
          run_campaign(apps(), systems(), options, &ThreadPool::shared()));
      return MethodFixture{ds.features(), ds.targets()};
    }();
    return f;
  }
};

void gbt_fit_method(benchmark::State& state, ml::GbtTreeMethod method) {
  const auto& f = MethodFixture::get();
  ml::GbtOptions options;
  options.n_rounds = static_cast<int>(state.range(0));
  options.tree_method = method;
  for (auto _ : state) {
    ml::GbtRegressor model(options);
    model.fit(f.x, f.y, &ThreadPool::shared());
    benchmark::DoNotOptimize(model.fitted());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) *
                          static_cast<std::int64_t>(f.y.cols()));
}

void BM_GbtFitExact(benchmark::State& state) {
  gbt_fit_method(state, ml::GbtTreeMethod::kExact);
}
BENCHMARK(BM_GbtFitExact)->Arg(20)->Arg(200)->Unit(benchmark::kMillisecond);

void BM_GbtFitHist(benchmark::State& state) {
  gbt_fit_method(state, ml::GbtTreeMethod::kHist);
}
BENCHMARK(BM_GbtFitHist)->Arg(20)->Arg(200)->Unit(benchmark::kMillisecond);

void BM_GbtPredict(benchmark::State& state) {
  const auto& f = FitFixture::get();
  ml::GbtOptions options;
  options.n_rounds = 50;
  options.max_depth = 6;
  ml::GbtRegressor model(options);
  model.fit(f.x, f.y);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.predict(f.x).flat().data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(f.x.rows()));
}
BENCHMARK(BM_GbtPredict)->Unit(benchmark::kMillisecond);

void BM_ForestFit(benchmark::State& state) {
  const auto& f = FitFixture::get();
  ml::ForestOptions options;
  options.n_trees = static_cast<int>(state.range(0));
  for (auto _ : state) {
    ml::RandomForest model(options);
    model.fit(f.x, f.y);
    benchmark::DoNotOptimize(model.fitted());
  }
}
BENCHMARK(BM_ForestFit)->Arg(10)->Arg(25)->Unit(benchmark::kMillisecond);

void BM_SchedulerSimulate(benchmark::State& state) {
  sim::CampaignOptions options;
  options.inputs_per_app = 4;
  const auto ds = core::build_dataset(run_campaign(apps(), systems(), options));
  core::CrossArchPredictor::Options popt;
  popt.gbt.n_rounds = 30;
  popt.gbt.max_depth = 4;
  core::CrossArchPredictor predictor(popt);
  predictor.train(ds);
  const auto predictions = predictor.predict(ds.features());
  const auto jobs = sched::sample_jobs(ds, predictions, apps(),
                                       static_cast<std::size_t>(state.range(0)), 3);
  const auto machines = sched::default_cluster(systems());
  for (auto _ : state) {
    sched::ModelBasedAssigner assigner;
    benchmark::DoNotOptimize(sched::simulate(jobs, machines, assigner).makespan_s);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SchedulerSimulate)->Arg(5000)->Arg(20000)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
