// Infrastructure micro-benchmarks (google-benchmark): simulator run rate,
// dataset assembly, model fit/predict throughput, scheduler event rate.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdlib>
#include <new>

#include "arch/system_catalog.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "core/dataset.hpp"
#include "core/predictor.hpp"
#include "ml/compiled_ensemble.hpp"
#include "ml/gbt.hpp"
#include "ml/random_forest.hpp"
#include "sched/easy_scheduler.hpp"
#include "sched/workload_gen.hpp"
#include "sim/runner.hpp"
#include "workload/app_catalog.hpp"

// Global allocation counter so the serve-path benches can assert the
// steady-state single-row predict is allocation-free (the hot request
// path of `mphpc serve`). Counts every operator new in the process.
// GCC pattern-matches replaced new/delete pairs against the builtin
// allocator and mis-flags the (correct) malloc/free implementations.
// lint:allow-file raw-new -- replacing the global allocator to count it
// is the one place 'operator new/delete' definitions are the point
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
std::atomic<std::size_t> g_alloc_count{0};

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace mphpc;

const workload::AppCatalog& apps() {
  static const workload::AppCatalog catalog;
  return catalog;
}

const arch::SystemCatalog& systems() {
  static const arch::SystemCatalog catalog;
  return catalog;
}

// One simulated profile (analytic model + counter synthesis).
void BM_ProfileOneRun(benchmark::State& state) {
  const sim::Profiler profiler(1);
  const auto& app = apps().get("CoMD");
  const auto inputs = workload::make_inputs(app, 1, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(profiler.profile(
        app, inputs[0], workload::ScaleClass::kOneNode, systems().get("lassen")));
  }
}
BENCHMARK(BM_ProfileOneRun);

// Full campaign sweep at a reduced size, per-run rate reported.
void BM_Campaign(benchmark::State& state) {
  sim::CampaignOptions options;
  options.inputs_per_app = static_cast<int>(state.range(0));
  std::size_t runs = 0;
  for (auto _ : state) {
    const auto profiles = sim::run_campaign(apps(), systems(), options);
    runs += profiles.size();
    benchmark::DoNotOptimize(profiles.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(runs));
}
BENCHMARK(BM_Campaign)->Arg(2)->Arg(8);

// Dataset assembly from a fixed campaign.
void BM_BuildDataset(benchmark::State& state) {
  sim::CampaignOptions options;
  options.inputs_per_app = 8;
  const auto profiles = sim::run_campaign(apps(), systems(), options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::build_dataset(profiles).num_rows());
  }
}
BENCHMARK(BM_BuildDataset);

struct FitFixture {
  ml::Matrix x;
  ml::Matrix y;

  static const FitFixture& get() {
    static const FitFixture f = [] {
      sim::CampaignOptions options;
      options.inputs_per_app = 6;
      const auto ds = core::build_dataset(run_campaign(apps(), systems(), options));
      return FitFixture{ds.features(), ds.targets()};
    }();
    return f;
  }
};

void BM_GbtFit(benchmark::State& state) {
  const auto& f = FitFixture::get();
  ml::GbtOptions options;
  options.n_rounds = static_cast<int>(state.range(0));
  options.max_depth = 6;
  for (auto _ : state) {
    ml::GbtRegressor model(options);
    model.fit(f.x, f.y);
    benchmark::DoNotOptimize(model.fitted());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 4);
}
BENCHMARK(BM_GbtFit)->Arg(20)->Arg(50)->Unit(benchmark::kMillisecond);

// Split-search method comparison on the full counter feature set: the
// paper-scale fit (200 rounds, default depth/subsampling) is the tracked
// configuration for the histogram-vs-exact trajectory (BENCH_gbt.json).
struct MethodFixture {
  ml::Matrix x;
  ml::Matrix y;

  static const MethodFixture& get() {
    static const MethodFixture f = [] {
      sim::CampaignOptions options;
      options.inputs_per_app = 24;
      const auto ds = core::build_dataset(
          run_campaign(apps(), systems(), options, &ThreadPool::shared()));
      return MethodFixture{ds.features(), ds.targets()};
    }();
    return f;
  }
};

void gbt_fit_method(benchmark::State& state, ml::GbtTreeMethod method) {
  const auto& f = MethodFixture::get();
  ml::GbtOptions options;
  options.n_rounds = static_cast<int>(state.range(0));
  options.tree_method = method;
  for (auto _ : state) {
    ml::GbtRegressor model(options);
    model.fit(f.x, f.y, &ThreadPool::shared());
    benchmark::DoNotOptimize(model.fitted());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) *
                          static_cast<std::int64_t>(f.y.cols()));
}

void BM_GbtFitExact(benchmark::State& state) {
  gbt_fit_method(state, ml::GbtTreeMethod::kExact);
}
BENCHMARK(BM_GbtFitExact)->Arg(20)->Arg(200)->Unit(benchmark::kMillisecond);

void BM_GbtFitHist(benchmark::State& state) {
  gbt_fit_method(state, ml::GbtTreeMethod::kHist);
}
BENCHMARK(BM_GbtFitHist)->Arg(20)->Arg(200)->Unit(benchmark::kMillisecond);

void BM_GbtPredict(benchmark::State& state) {
  const auto& f = FitFixture::get();
  ml::GbtOptions options;
  options.n_rounds = 50;
  options.max_depth = 6;
  ml::GbtRegressor model(options);
  model.fit(f.x, f.y);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.predict(f.x).flat().data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(f.x.rows()));
}
BENCHMARK(BM_GbtPredict)->Unit(benchmark::kMillisecond);

// ------------------------------------------- compiled batch inference ----
// Reference node-walking predict vs the flattened SoA engine
// (ml/compiled_ensemble.hpp) on the same model and a 4096-row batch.
// Single-threaded on both sides so the ratio is the per-core speedup.

ml::Matrix tiled_rows(const ml::Matrix& src, std::size_t rows) {
  ml::Matrix out(rows, src.cols());
  for (std::size_t r = 0; r < rows; ++r) {
    const auto s = src.row(r % src.rows());
    std::copy(s.begin(), s.end(), out.row(r).begin());
  }
  return out;
}

const ml::GbtRegressor& predict_gbt_model() {
  static const ml::GbtRegressor model = [] {
    const auto& f = FitFixture::get();
    ml::GbtOptions options;
    options.n_rounds = 50;
    options.max_depth = 6;
    ml::GbtRegressor m(options);
    m.fit(f.x, f.y);
    return m;
  }();
  return model;
}

void BM_GbtPredictRef(benchmark::State& state) {
  const auto& model = predict_gbt_model();
  const ml::Matrix x =
      tiled_rows(FitFixture::get().x, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.predict(x).flat().data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(x.rows()));
}
BENCHMARK(BM_GbtPredictRef)->Arg(4096)->Unit(benchmark::kMillisecond);

void BM_GbtPredictCompiled(benchmark::State& state) {
  const auto compiled = ml::CompiledEnsemble::compile(predict_gbt_model());
  const ml::Matrix x =
      tiled_rows(FitFixture::get().x, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(compiled.predict(x).flat().data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(x.rows()));
}
BENCHMARK(BM_GbtPredictCompiled)->Arg(4096)->Unit(benchmark::kMillisecond);

// Quantized bin-code engine on the same model/rows: uint8 row codes +
// uint8 threshold compares + uint16 children, so one output's trees stay
// L1-resident. Lossless for this model, so the ratio to
// BM_GbtPredictCompiled is pure kernel speedup.
void BM_GbtPredictQuantized(benchmark::State& state) {
  const auto compiled =
      ml::CompiledEnsemble::compile(predict_gbt_model(), {.quantize = true});
  if (!compiled.quantized()) {
    state.SkipWithError("model did not quantize");
    return;
  }
  const ml::Matrix x =
      tiled_rows(FitFixture::get().x, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(compiled.predict(x).flat().data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(x.rows()));
}
BENCHMARK(BM_GbtPredictQuantized)->Arg(4096)->Unit(benchmark::kMillisecond);

// Compile-time cost of each engine (the price paid at train/load/refit).
void BM_GbtCompileExact(benchmark::State& state) {
  const auto& model = predict_gbt_model();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ml::CompiledEnsemble::compile(model).n_nodes());
  }
}
BENCHMARK(BM_GbtCompileExact)->Unit(benchmark::kMillisecond);

void BM_GbtCompileQuantized(benchmark::State& state) {
  const auto& model = predict_gbt_model();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ml::CompiledEnsemble::compile(model, {.quantize = true}).quantized());
  }
}
BENCHMARK(BM_GbtCompileQuantized)->Unit(benchmark::kMillisecond);

// The serve hot path: one row through the thread-local-scratch overload,
// asserting the steady state allocates nothing (arg 0 = exact engine,
// arg 1 = quantized).
void BM_GbtPredictRowServe(benchmark::State& state) {
  const auto compiled = ml::CompiledEnsemble::compile(
      predict_gbt_model(), {.quantize = state.range(0) != 0});
  if (state.range(0) != 0 && !compiled.quantized()) {
    state.SkipWithError("model did not quantize");
    return;
  }
  const auto& f = FitFixture::get();
  std::vector<double> out(compiled.n_outputs());
  // Warm the thread-local scratch so the timed loop is steady state.
  compiled.predict_row(f.x.row(0), out);
  bool allocated = false;
  for (auto _ : state) {
    const std::size_t before = g_alloc_count.load(std::memory_order_relaxed);
    compiled.predict_row(f.x.row(0), out);
    benchmark::DoNotOptimize(out.data());
    allocated |= g_alloc_count.load(std::memory_order_relaxed) != before;
  }
  if (allocated) state.SkipWithError("predict_row allocated on the hot path");
}
BENCHMARK(BM_GbtPredictRowServe)->Arg(0)->Arg(1);

const ml::RandomForest& predict_forest_model() {
  static const ml::RandomForest model = [] {
    const auto& f = FitFixture::get();
    ml::ForestOptions options;
    options.n_trees = 25;
    // Histogram split search: the thresholds then come from <= max_bins
    // bin edges per feature, so the same model also serves quantized —
    // Ref / Compiled / Quantized rows compare one model. (Exact-grown
    // forests mint too many distinct thresholds for the uint8 cut table.)
    options.method = ml::TreeMethod::kHist;
    ml::RandomForest m(options);
    m.fit(f.x, f.y);
    return m;
  }();
  return model;
}

void BM_ForestPredictRef(benchmark::State& state) {
  const auto& model = predict_forest_model();
  const ml::Matrix x =
      tiled_rows(FitFixture::get().x, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.predict(x).flat().data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(x.rows()));
}
BENCHMARK(BM_ForestPredictRef)->Arg(4096)->Unit(benchmark::kMillisecond);

void BM_ForestPredictCompiled(benchmark::State& state) {
  const auto compiled = ml::CompiledEnsemble::compile(predict_forest_model());
  const ml::Matrix x =
      tiled_rows(FitFixture::get().x, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(compiled.predict(x).flat().data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(x.rows()));
}
BENCHMARK(BM_ForestPredictCompiled)->Arg(4096)->Unit(benchmark::kMillisecond);

void BM_ForestPredictQuantized(benchmark::State& state) {
  const auto compiled =
      ml::CompiledEnsemble::compile(predict_forest_model(), {.quantize = true});
  if (!compiled.quantized()) {
    state.SkipWithError("model did not quantize");
    return;
  }
  const ml::Matrix x =
      tiled_rows(FitFixture::get().x, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(compiled.predict(x).flat().data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(x.rows()));
}
BENCHMARK(BM_ForestPredictQuantized)->Arg(4096)->Unit(benchmark::kMillisecond);

void BM_ForestFit(benchmark::State& state) {
  const auto& f = FitFixture::get();
  ml::ForestOptions options;
  options.n_trees = static_cast<int>(state.range(0));
  for (auto _ : state) {
    ml::RandomForest model(options);
    model.fit(f.x, f.y);
    benchmark::DoNotOptimize(model.fitted());
  }
}
BENCHMARK(BM_ForestFit)->Arg(10)->Arg(25)->Unit(benchmark::kMillisecond);

// Forest split-search comparison: exact pre-sorted sweeps vs histogram
// bins over one shared BinnedMatrix (the kHist payoff at forest scale).
void forest_fit_method(benchmark::State& state, ml::TreeMethod method) {
  const auto& f = MethodFixture::get();
  ml::ForestOptions options;
  options.n_trees = 25;
  options.method = method;
  for (auto _ : state) {
    ml::RandomForest model(options);
    model.fit(f.x, f.y, &ThreadPool::shared());
    benchmark::DoNotOptimize(model.fitted());
  }
  state.SetItemsProcessed(state.iterations() * options.n_trees);
}

void BM_ForestFitExact(benchmark::State& state) {
  forest_fit_method(state, ml::TreeMethod::kExact);
}
BENCHMARK(BM_ForestFitExact)->Unit(benchmark::kMillisecond);

void BM_ForestFitHist(benchmark::State& state) {
  forest_fit_method(state, ml::TreeMethod::kHist);
}
BENCHMARK(BM_ForestFitHist)->Unit(benchmark::kMillisecond);

// ------------------------------------------------ assignment-path micro ----
// One Model-based assign() per queued job against an empty cluster: the
// per-job machine order is either memoized once by prime() (what the
// simulation engine now does) or re-derived on every call.

struct SchedFixture {
  std::vector<sched::Job> jobs;
  std::vector<sched::Machine> machines;

  static const SchedFixture& get() {
    static const SchedFixture f = [] {
      sim::CampaignOptions options;
      options.inputs_per_app = 4;
      const auto ds = core::build_dataset(run_campaign(apps(), systems(), options));
      core::CrossArchPredictor::Options popt;
      popt.gbt.n_rounds = 30;
      popt.gbt.max_depth = 4;
      core::CrossArchPredictor predictor(popt);
      predictor.train(ds);
      const auto predictions = predictor.predict(ds.features());
      return SchedFixture{sched::sample_jobs(ds, predictions, apps(), 4096, 3),
                          sched::default_cluster(systems())};
    }();
    return f;
  }
};

void assign_micro(benchmark::State& state, bool primed) {
  const auto& f = SchedFixture::get();
  std::array<int, arch::kNumSystems> free_nodes{};
  for (const auto& m : f.machines) {
    free_nodes[static_cast<std::size_t>(m.id)] = m.total_nodes;
  }
  const sched::ClusterView view(f.machines, free_nodes);
  sched::ModelBasedAssigner assigner;
  if (primed) assigner.prime(f.jobs);
  for (auto _ : state) {
    for (const auto& job : f.jobs) {
      benchmark::DoNotOptimize(assigner.assign(job, 0, view));
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(f.jobs.size()));
}

void BM_AssignModelBased(benchmark::State& state) { assign_micro(state, false); }
BENCHMARK(BM_AssignModelBased)->Unit(benchmark::kMicrosecond);

void BM_AssignModelBasedPrimed(benchmark::State& state) { assign_micro(state, true); }
BENCHMARK(BM_AssignModelBasedPrimed)->Unit(benchmark::kMicrosecond);

void BM_SchedulerSimulate(benchmark::State& state) {
  sim::CampaignOptions options;
  options.inputs_per_app = 4;
  const auto ds = core::build_dataset(run_campaign(apps(), systems(), options));
  core::CrossArchPredictor::Options popt;
  popt.gbt.n_rounds = 30;
  popt.gbt.max_depth = 4;
  core::CrossArchPredictor predictor(popt);
  predictor.train(ds);
  const auto predictions = predictor.predict(ds.features());
  const auto jobs = sched::sample_jobs(ds, predictions, apps(),
                                       static_cast<std::size_t>(state.range(0)), 3);
  const auto machines = sched::default_cluster(systems());
  for (auto _ : state) {
    sched::ModelBasedAssigner assigner;
    benchmark::DoNotOptimize(sched::simulate(jobs, machines, assigner).makespan_s);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SchedulerSimulate)->Arg(5000)->Arg(20000)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
