// Regenerates paper Figure 3: MAE (left) and SOS (right) heatmaps for each
// ML model when trained/evaluated only on counters collected on one source
// architecture. The paper's finding: CPU-sourced counters (Quartz, Ruby)
// predict better than GPU-sourced ones (Lassen, Corona).
#include "bench_common.hpp"

#include "data/split.hpp"

int main() {
  using namespace mphpc;
  bench::print_header("Figure 3",
                      "MAE / SOS per (model x source architecture)");

  const core::Dataset ds = bench::build_standard_dataset();
  const auto x = ds.features();
  const auto y = ds.targets();
  const auto& systems = ds.systems();

  // Per source architecture: 90/10 split within its rows.
  struct Cell {
    double mae = 0.0;
    double sos = 0.0;
  };
  Cell cells[4][arch::kNumSystems];  // [model][source]

  Timer timer;
  for (std::size_t s = 0; s < arch::kNumSystems; ++s) {
    const std::string source(arch::to_string(static_cast<arch::SystemId>(s)));
    const auto rows = data::rows_where(systems, source);
    const auto pos_split = data::train_test_split(rows.size(), 0.10, 42);
    std::vector<std::size_t> train;
    std::vector<std::size_t> test;
    for (const auto p : pos_split.train) train.push_back(rows[p]);
    for (const auto p : pos_split.test) test.push_back(rows[p]);
    const auto x_train = x.select_rows(train);
    const auto y_train = y.select_rows(train);
    const auto x_test = x.select_rows(test);
    const auto y_test = y.select_rows(test);

    for (std::size_t m = 0; m < core::kAllModelKinds.size(); ++m) {
      std::unique_ptr<ml::Regressor> model;
      if (core::kAllModelKinds[m] == core::ModelKind::kXgboost) {
        model = std::make_unique<ml::GbtRegressor>(bench::ablation_gbt_options());
      } else {
        model = core::make_model(core::kAllModelKinds[m]);
      }
      model->fit(x_train, y_train, &ThreadPool::shared());
      const auto metrics = core::evaluate(y_test, model->predict(x_test));
      cells[m][s] = {metrics.mae, metrics.sos};
    }
  }

  const auto print_heatmap = [&](const char* metric, auto getter) {
    std::printf("\n%s:\n", metric);
    TablePrinter table({"model", "quartz", "ruby", "lassen", "corona"});
    for (std::size_t m = 0; m < core::kAllModelKinds.size(); ++m) {
      std::vector<double> row;
      for (std::size_t s = 0; s < arch::kNumSystems; ++s) {
        row.push_back(getter(cells[m][s]));
      }
      table.add_row_numeric(std::string(core::to_string(core::kAllModelKinds[m])),
                            row, 4);
    }
    table.print();
  };
  print_heatmap("MAE (lower is better)", [](const Cell& c) { return c.mae; });
  print_heatmap("SOS (higher is better)", [](const Cell& c) { return c.sos; });

  // Paper's headline comparison: CPU sources vs GPU sources for XGBoost.
  const double cpu_mae = 0.5 * (cells[3][0].mae + cells[3][1].mae);
  const double gpu_mae = 0.5 * (cells[3][2].mae + cells[3][3].mae);
  std::printf("\nXGBoost mean MAE from CPU sources: %.4f, from GPU sources: %.4f\n",
              cpu_mae, gpu_mae);
  std::printf("(paper: CPU-sourced counters predict better — ratio here %.2f)\n",
              gpu_mae / cpu_mae);

  JsonWriter json;
  json.begin_object().field("experiment", "fig3").begin_array("cells");
  for (std::size_t m = 0; m < core::kAllModelKinds.size(); ++m) {
    for (std::size_t s = 0; s < arch::kNumSystems; ++s) {
      json.begin_object()
          .field("model", core::to_string(core::kAllModelKinds[m]))
          .field("source", arch::to_string(static_cast<arch::SystemId>(s)))
          .field("mae", cells[m][s].mae)
          .field("sos", cells[m][s].sos)
          .end_object();
    }
  }
  json.end_array().field("seconds", timer.seconds()).end_object();
  std::printf("elapsed: %.1f s\n", timer.seconds());
  bench::print_json_line(json);
  return 0;
}
