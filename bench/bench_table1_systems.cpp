// Regenerates paper Table I: the four systems and their configurations.
#include "bench_common.hpp"

int main() {
  using namespace mphpc;
  bench::print_header("Table I", "Systems used for data collection");

  const arch::SystemCatalog catalog;
  TablePrinter table({"System", "CPU Type", "CPU cores/node", "CPU Clock (GHz)",
                      "GPU Type", "GPUs/node", "Nodes"});
  JsonWriter json;
  json.begin_object().field("experiment", "table1").begin_array("systems");
  for (const auto& sys : catalog.all()) {
    table.add_row({std::string(arch::to_string(sys.id)), sys.cpu.model,
                   std::to_string(sys.cpu.cores_per_node),
                   format_fixed(sys.cpu.clock_ghz, 1),
                   sys.gpu ? sys.gpu->model : "-",
                   sys.gpu ? std::to_string(sys.gpu->per_node) : "-",
                   std::to_string(sys.nodes)});
    json.begin_object()
        .field("name", arch::to_string(sys.id))
        .field("cpu", sys.cpu.model)
        .field("cores", sys.cpu.cores_per_node)
        .field("clock_ghz", sys.cpu.clock_ghz)
        .field("gpu", sys.gpu ? sys.gpu->model : "-")
        .field("gpus_per_node", sys.gpu ? sys.gpu->per_node : 0)
        .field("nodes", sys.nodes)
        .end_object();
  }
  json.end_array().end_object();
  table.print();
  bench::print_json_line(json);
  return 0;
}
