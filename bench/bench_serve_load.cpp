// bench_serve_load — loopback load generator for `mphpc serve`.
//
// Default mode trains a small model, starts the serve daemon on a Unix
// socket in a scratch directory, and hammers it from closed-loop client
// threads mixing predict and feedback traffic (so refits and hot-swaps
// happen under load). Prints one JSON object with latency percentiles,
// throughput, and the daemon's own counters; the tracked baseline lives
// in results/BENCH_serve.json.
//
//   bench_serve_load [--requests N] [--clients C] [--feedback-every K]
//
// --emit-jsonl FILE [--predicts P] [--feedbacks F] instead writes the
// request corpus as a JSONL session (predict lines then feedback lines,
// no shutdown) for the CI serve smoke to pipe into the daemon.
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "arch/system_catalog.hpp"
#include "common/json_writer.hpp"
#include "common/thread_pool.hpp"
#include "common/timer.hpp"
#include "core/dataset.hpp"
#include "core/predictor.hpp"
#include "serve/json.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"
#include "sim/runner.hpp"
#include "workload/app_catalog.hpp"

namespace {

using namespace mphpc;

/// One (app, input) pair profiled on every system: a predict line per
/// system plus a feedback line carrying all four measured times.
struct Corpus {
  std::vector<std::string> predicts;
  std::vector<std::string> feedbacks;
};

void profile_json(JsonWriter& w, const sim::RunProfile& p) {
  w.begin_object("profile");
  w.field("app", p.app);
  w.field("system", arch::to_string(p.system));
  w.field("scale", workload::to_string(p.config.scale_class));
  w.field("nodes", p.config.nodes);
  w.field("ranks", p.config.ranks);
  w.field("cores", p.config.cores);
  w.field("gpus", p.config.gpus);
  w.field("device", arch::to_string(p.device));
  w.field("input_index", p.input_index);
  w.field("input_scale", p.input_scale);
  w.field("time_s", p.time_s);
  w.begin_object("counters");
  for (const arch::CounterKind kind : arch::kAllCounterKinds) {
    w.field(arch::to_string(kind), sim::get(p.counters, kind));
  }
  w.end_object();
  w.end_object();
}

std::string request_id(char prefix, int id) {
  std::string s(1, prefix);
  s += std::to_string(id);
  return s;
}

std::string predict_line(const sim::RunProfile& p, int id) {
  JsonWriter w;
  w.begin_object();
  w.field("op", "predict");
  w.field("id", request_id('p', id));
  profile_json(w, p);
  w.end_object();
  return w.str();
}

std::string feedback_line(const sim::RunProfile& p,
                          const std::array<double, arch::kNumSystems>& times,
                          int id) {
  JsonWriter w;
  w.begin_object();
  w.field("op", "feedback");
  w.field("id", request_id('f', id));
  profile_json(w, p);
  w.begin_object("times");
  for (const arch::SystemId sys : arch::kAllSystems) {
    w.field(arch::to_string(sys),
            times[static_cast<std::size_t>(sys)]);
  }
  w.end_object();
  w.end_object();
  return w.str();
}

Corpus build_corpus(int inputs_per_app, std::uint64_t seed) {
  const workload::AppCatalog apps;
  const arch::SystemCatalog systems;
  const sim::Profiler profiler(seed);
  Corpus corpus;
  int id = 0;
  for (const workload::AppSignature& sig : apps.all()) {
    for (const auto& input : workload::make_inputs(sig, inputs_per_app, seed)) {
      std::array<double, arch::kNumSystems> times{};
      std::vector<sim::RunProfile> runs;
      for (const arch::SystemId sys : arch::kAllSystems) {
        runs.push_back(profiler.profile(sig, input,
                                        workload::ScaleClass::kOneNode,
                                        systems.get(sys)));
        times[static_cast<std::size_t>(sys)] = runs.back().time_s;
      }
      for (const sim::RunProfile& run : runs) {
        corpus.predicts.push_back(predict_line(run, id));
        corpus.feedbacks.push_back(feedback_line(run, times, id));
        ++id;
      }
    }
  }
  return corpus;
}

/// Trains the serving model on a quick campaign and saves it for the
/// daemon's --model bootstrap.
std::string train_model(const std::string& dir) {
  const workload::AppCatalog apps;
  const arch::SystemCatalog systems;
  sim::CampaignOptions campaign;
  campaign.inputs_per_app = 4;
  const auto dataset = core::build_dataset(
      sim::run_campaign(apps, systems, campaign, &ThreadPool::shared()));
  core::CrossArchPredictor::Options options;
  options.gbt.n_rounds = 150;
  options.gbt.max_depth = 6;
  core::CrossArchPredictor predictor(options);
  predictor.train(dataset, {}, &ThreadPool::shared());
  const std::string path = dir + "/model.txt";
  predictor.save(path);
  return path;
}

int connect_with_retry(const std::string& socket_path) {
  sockaddr_un addr = {};
  addr.sun_family = AF_UNIX;
  std::copy(socket_path.begin(), socket_path.end(), addr.sun_path);
  for (int attempt = 0; attempt < 200; ++attempt) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return -1;
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) ==
        0) {
      return fd;
    }
    ::close(fd);
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return -1;
}

bool send_line(int fd, const std::string& line) {
  std::string out = line + "\n";
  std::size_t off = 0;
  while (off < out.size()) {
    const ssize_t n = ::write(fd, out.data() + off, out.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

bool read_line(int fd, std::string& buffer, std::string& line) {
  for (;;) {
    const std::size_t pos = buffer.find('\n');
    if (pos != std::string::npos) {
      line = buffer.substr(0, pos);
      buffer.erase(0, pos + 1);
      return true;
    }
    char chunk[16384];
    const ssize_t n = ::read(fd, chunk, sizeof chunk);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
}

struct ClientResult {
  std::vector<double> latency_ms;
  long long ok = 0;
  long long errors = 0;
  long long resets = 0;  ///< connections lost mid-request and re-dialed
};

/// Closed-loop client: sends its assigned request lines one at a time and
/// times each round trip. Every `feedback_every`-th request is a feedback
/// so the daemon refits and hot-swaps while predicts are in flight.
///
/// A connection reset (a supervised worker SIGKILLed with this client's
/// request in flight) is NOT an error: the client re-dials — the
/// supervisor's socket stays live across worker deaths — and retries the
/// same request. Only a reply that arrives and is wrong, or a daemon
/// that stops answering entirely, counts against `errors`.
ClientResult run_client(const std::string& socket_path, const Corpus& corpus,
                        int requests, int feedback_every, int offset) {
  ClientResult result;
  int fd = connect_with_retry(socket_path);
  if (fd < 0) {
    result.errors = requests;
    return result;
  }
  std::string buffer;
  std::string reply;
  result.latency_ms.reserve(static_cast<std::size_t>(requests));
  for (int i = 0; i < requests; ++i) {
    const int global = offset + i;
    const bool feedback = feedback_every > 0 && global % feedback_every == 0;
    const auto& lines = feedback ? corpus.feedbacks : corpus.predicts;
    const std::string& line =
        lines[static_cast<std::size_t>(global) % lines.size()];
    bool answered = false;
    for (int attempt = 0; attempt < 5 && !answered; ++attempt) {
      const Timer timer;
      if (send_line(fd, line) && read_line(fd, buffer, reply)) {
        result.latency_ms.push_back(timer.millis());
        answered = true;
        break;
      }
      ::close(fd);
      buffer.clear();  // a dead worker's partial reply is garbage
      ++result.resets;
      fd = connect_with_retry(socket_path);
      if (fd < 0) {
        result.errors += requests - i;
        return result;
      }
    }
    if (!answered) {
      ++result.errors;
      continue;
    }
    if (reply.find("\"ok\":true") != std::string::npos) {
      ++result.ok;
    } else {
      ++result.errors;
    }
  }
  ::close(fd);
  return result;
}

double percentile(std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

int emit_jsonl(const std::string& path, int predicts, int feedbacks) {
  const Corpus corpus = build_corpus(/*inputs_per_app=*/2, /*seed=*/11);
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  for (int i = 0; i < predicts; ++i) {
    out << corpus.predicts[static_cast<std::size_t>(i) % corpus.predicts.size()]
        << '\n';
  }
  for (int i = 0; i < feedbacks; ++i) {
    out << corpus.feedbacks[static_cast<std::size_t>(i) %
                            corpus.feedbacks.size()]
        << '\n';
  }
  std::fprintf(stderr, "wrote %d predicts + %d feedbacks to %s\n", predicts,
               feedbacks, path.c_str());
  return 0;
}

/// External mode: hammers an already-running daemon (typically the
/// `--workers N` supervised fleet) on `socket_path`. The caller owns the
/// daemon's lifecycle — no shutdown is sent — so ci.sh can kill -9 a
/// worker mid-load and assert the client-visible outcome: every request
/// answered correctly or with an explicit error code, resets absorbed by
/// re-dialing, zero silent drops.
int run_external(const std::string& socket_path, int requests, int clients,
                 int feedback_every) {
  const Corpus corpus = build_corpus(/*inputs_per_app=*/2, /*seed=*/11);
  std::fprintf(stderr, "running %d requests over %d clients against %s...\n",
               requests, clients, socket_path.c_str());
  const Timer wall;
  std::vector<ClientResult> results(static_cast<std::size_t>(clients));
  {
    std::vector<std::thread> workers;
    const int share = requests / clients;
    for (int c = 0; c < clients; ++c) {
      const int n = c == clients - 1 ? requests - share * (clients - 1) : share;
      workers.emplace_back([&, c, n] {
        results[static_cast<std::size_t>(c)] =
            run_client(socket_path, corpus, n, feedback_every, c * share);
      });
    }
    for (std::thread& w : workers) w.join();
  }
  const double elapsed_s = wall.seconds();

  std::vector<double> latencies;
  long long ok = 0;
  long long errors = 0;
  long long resets = 0;
  for (const ClientResult& r : results) {
    latencies.insert(latencies.end(), r.latency_ms.begin(), r.latency_ms.end());
    ok += r.ok;
    errors += r.errors;
    resets += r.resets;
  }
  std::sort(latencies.begin(), latencies.end());

  JsonWriter json;
  json.begin_object();
  json.begin_object("config");
  json.field("socket", socket_path);
  json.field("requests", requests);
  json.field("clients", clients);
  json.field("feedback_every", feedback_every);
  json.end_object();
  json.begin_object("results");
  json.field("elapsed_s", elapsed_s);
  json.field("throughput_rps", static_cast<double>(ok + errors) / elapsed_s);
  json.field("ok", ok);
  json.field("errors", errors);
  json.field("resets", resets);
  json.begin_object("latency_ms");
  json.field("p50", percentile(latencies, 0.50));
  json.field("p90", percentile(latencies, 0.90));
  json.field("p99", percentile(latencies, 0.99));
  json.field("max", latencies.empty() ? 0.0 : latencies.back());
  json.end_object();
  json.end_object();
  json.end_object();
  std::printf("%s\n", json.str().c_str());
  return errors == 0 ? 0 : 1;
}

int run_benchmark(int requests, int clients, int feedback_every) {
  const std::string dir =
      (std::filesystem::temp_directory_path() /
       ("mphpc_serve_bench_" + std::to_string(::getpid())))
          .string();
  std::filesystem::create_directories(dir);
  std::fprintf(stderr, "training model + corpus (scratch %s)...\n", dir.c_str());

  serve::ServeOptions core_options;
  core_options.state_dir = dir;
  core_options.model_path = train_model(dir);
  core_options.refit_every = 128;
  core_options.min_refit_rows = 64;
  const Corpus corpus = build_corpus(/*inputs_per_app=*/2, /*seed=*/11);

  serve::ServeCore core(core_options);
  serve::ServerOptions server_options;
  server_options.socket_path = dir + "/serve.sock";
  std::thread daemon([&core, &server_options] {
    serve::Server server(core, server_options, nullptr);
    (void)server.run();
  });

  std::fprintf(stderr, "running %d requests over %d clients...\n", requests,
               clients);
  const Timer wall;
  std::vector<ClientResult> results(static_cast<std::size_t>(clients));
  {
    std::vector<std::thread> workers;
    const int share = requests / clients;
    for (int c = 0; c < clients; ++c) {
      const int n = c == clients - 1 ? requests - share * (clients - 1) : share;
      workers.emplace_back([&, c, n] {
        results[static_cast<std::size_t>(c)] = run_client(
            server_options.socket_path, corpus, n, feedback_every, c * share);
      });
    }
    for (std::thread& w : workers) w.join();
  }
  const double elapsed_s = wall.seconds();

  const serve::JsonValue stats = serve::JsonValue::parse(core.stats_reply("b"));
  const int shutdown_fd = connect_with_retry(server_options.socket_path);
  if (shutdown_fd >= 0) {
    (void)send_line(shutdown_fd, R"({"op":"shutdown","id":"bye"})");
    ::close(shutdown_fd);
  }
  daemon.join();

  std::vector<double> latencies;
  long long ok = 0;
  long long errors = 0;
  long long resets = 0;
  for (const ClientResult& r : results) {
    latencies.insert(latencies.end(), r.latency_ms.begin(), r.latency_ms.end());
    ok += r.ok;
    errors += r.errors;
    resets += r.resets;
  }
  std::sort(latencies.begin(), latencies.end());

  JsonWriter json;
  json.begin_object();
  json.begin_object("config");
  json.field("requests", requests);
  json.field("clients", clients);
  json.field("feedback_every", feedback_every);
  json.field("queue_cap", server_options.queue_cap);
  json.field("batch_max", server_options.batch_max);
  json.field("refit_every", core_options.refit_every);
  json.end_object();
  json.begin_object("results");
  json.field("elapsed_s", elapsed_s);
  json.field("throughput_rps", static_cast<double>(ok + errors) / elapsed_s);
  json.field("ok", ok);
  json.field("errors", errors);
  json.field("resets", resets);
  json.begin_object("latency_ms");
  json.field("p50", percentile(latencies, 0.50));
  json.field("p90", percentile(latencies, 0.90));
  json.field("p99", percentile(latencies, 0.99));
  json.field("max", latencies.empty() ? 0.0 : latencies.back());
  json.end_object();
  json.field("generation", core.generation());
  json.field("refits",
             stats.find("counters")->find("refits")->as_number());
  json.field("fallbacks",
             stats.find("counters")->find("fallbacks")->as_number());
  json.field("shed", stats.find("counters")->find("shed")->as_number());
  json.end_object();
  json.end_object();
  std::printf("%s\n", json.str().c_str());

  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  return errors == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string emit_path;
  std::string socket_path;
  int requests = 2000;
  int clients = 4;
  int feedback_every = 16;
  int predicts = 8;
  int feedbacks = 16;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (arg == "--emit-jsonl") emit_path = next();
    else if (arg == "--socket") socket_path = next();
    else if (arg == "--requests") requests = std::atoi(next());
    else if (arg == "--clients") clients = std::atoi(next());
    else if (arg == "--feedback-every") feedback_every = std::atoi(next());
    else if (arg == "--predicts") predicts = std::atoi(next());
    else if (arg == "--feedbacks") feedbacks = std::atoi(next());
    else {
      std::fprintf(stderr,
                   "usage: %s [--requests N] [--clients C] "
                   "[--feedback-every K] | --socket PATH [--requests N] "
                   "[--clients C] [--feedback-every K] | --emit-jsonl FILE "
                   "[--predicts P] [--feedbacks F]\n",
                   argv[0]);
      return 2;
    }
  }
  if (!emit_path.empty()) return emit_jsonl(emit_path, predicts, feedbacks);
  if (requests < 1 || clients < 1 || clients > requests) {
    std::fprintf(stderr, "bad --requests/--clients\n");
    return 2;
  }
  if (!socket_path.empty()) {
    return run_external(socket_path, requests, clients, feedback_every);
  }
  return run_benchmark(requests, clients, feedback_every);
}
