// Regenerates paper Table III: the derived features and, per system, the
// architecture-native source counters they are computed from.
#include "bench_common.hpp"

#include "arch/counter_names.hpp"
#include "core/feature_pipeline.hpp"

int main() {
  using namespace mphpc;
  using arch::CounterKind;
  using arch::Device;
  bench::print_header("Table III", "Derived features and per-system source counters");

  // The eight semantic kinds that feed the first fourteen features, in the
  // feature order of §V-D.
  struct FeatureSource {
    const char* feature;
    CounterKind kind;
    bool ratio;  // ratio-of-total-instructions vs standardized magnitude
  };
  const FeatureSource sources[] = {
      {"branch_intensity", CounterKind::kBranchInstructions, true},
      {"store_intensity", CounterKind::kStoreInstructions, true},
      {"load_intensity", CounterKind::kLoadInstructions, true},
      {"sp_fp_intensity", CounterKind::kSpFpInstructions, true},
      {"dp_fp_intensity", CounterKind::kDpFpInstructions, true},
      {"arith_intensity", CounterKind::kIntArithInstructions, true},
      {"l1_load_misses", CounterKind::kL1LoadMisses, false},
      {"l1_store_misses", CounterKind::kL1StoreMisses, false},
      {"l2_load_misses", CounterKind::kL2LoadMisses, false},
      {"l2_store_misses", CounterKind::kL2StoreMisses, false},
      {"io_bytes_written", CounterKind::kIoBytesWritten, false},
      {"io_bytes_read", CounterKind::kIoBytesRead, false},
      {"page_table_size", CounterKind::kPageTableSize, false},
      {"mem_stalls", CounterKind::kMemStallCycles, false},
  };

  TablePrinter table({"Feature", "Transform", "Quartz (CPU)", "Ruby (CPU)",
                      "Lassen (GPU)", "Corona (GPU)"});
  JsonWriter json;
  json.begin_object().field("experiment", "table3").begin_array("features");
  for (const auto& s : sources) {
    table.add_row(
        {s.feature, s.ratio ? "ratio of total insts" : "z-score",
         std::string(counter_source_name(arch::SystemId::kQuartz, Device::kCpu, s.kind)),
         std::string(counter_source_name(arch::SystemId::kRuby, Device::kCpu, s.kind)),
         std::string(counter_source_name(arch::SystemId::kLassen, Device::kGpu, s.kind)),
         std::string(counter_source_name(arch::SystemId::kCorona, Device::kGpu, s.kind))});
    json.begin_object().field("feature", s.feature).end_object();
  }
  for (const char* meta : {"nodes", "cores", "uses_gpu", "arch_quartz", "arch_ruby",
                           "arch_lassen", "arch_corona"}) {
    table.add_row({meta, "run configuration", "-", "-", "-", "-"});
    json.begin_object().field("feature", meta).end_object();
  }
  json.end_array().field("num_features", core::FeaturePipeline::kNumFeatures);
  json.end_object();
  table.print();
  std::printf("\n%zu final feature columns (paper: 21)\n",
              core::FeaturePipeline::kNumFeatures);
  bench::print_json_line(json);
  return 0;
}
