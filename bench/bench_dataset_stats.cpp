// Regenerates the §V-D dataset summary: row/column counts, per-system and
// per-scale composition, target distribution.
#include <algorithm>

#include "bench_common.hpp"

int main() {
  using namespace mphpc;
  bench::print_header("Dataset", "MP-HPC dataset statistics (paper SS V-D)");

  Timer timer;
  const core::Dataset ds = bench::build_standard_dataset();
  const double build_s = timer.seconds();

  std::printf("rows: %zu (paper: 11,312; see DESIGN.md on the -32 delta)\n",
              ds.num_rows());
  std::printf("feature columns: %zu (paper: 21)\n",
              core::FeaturePipeline::kNumFeatures);
  std::printf("build time: %.2f s\n\n", build_s);

  // Composition per source system and scale.
  TablePrinter comp({"system", "1core", "1node", "2node", "total"});
  const auto& systems = ds.systems();
  const auto& scales = ds.scales();
  JsonWriter json;
  json.begin_object()
      .field("experiment", "dataset_stats")
      .field("rows", ds.num_rows())
      .field("build_seconds", build_s)
      .begin_array("per_system");
  for (const arch::SystemId id : arch::kAllSystems) {
    const std::string name(arch::to_string(id));
    std::size_t counts[3] = {0, 0, 0};
    for (std::size_t r = 0; r < ds.num_rows(); ++r) {
      if (systems[r] != name) continue;
      if (scales[r] == "1core") ++counts[0];
      else if (scales[r] == "1node") ++counts[1];
      else ++counts[2];
    }
    comp.add_row({name, std::to_string(counts[0]), std::to_string(counts[1]),
                  std::to_string(counts[2]),
                  std::to_string(counts[0] + counts[1] + counts[2])});
    json.begin_object()
        .field("system", name)
        .field("rows", counts[0] + counts[1] + counts[2])
        .end_object();
  }
  comp.print();

  // Target (RPV entry) distribution.
  const auto y = ds.targets();
  std::vector<double> values(y.flat().begin(), y.flat().end());
  std::sort(values.begin(), values.end());
  const auto quantile = [&](double p) {
    return values[static_cast<std::size_t>(p * (values.size() - 1))];
  };
  std::printf("\nRPV entry distribution: min=%.3f p10=%.3f median=%.3f "
              "p90=%.3f p99=%.3f max=%.2f\n",
              quantile(0.0), quantile(0.10), quantile(0.50), quantile(0.90),
              quantile(0.99), quantile(1.0));
  json.end_array()
      .field("rpv_median", quantile(0.50))
      .field("rpv_p99", quantile(0.99))
      .field("rpv_max", quantile(1.0))
      .end_object();
  bench::print_json_line(json);
  return 0;
}
