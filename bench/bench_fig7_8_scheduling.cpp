// Regenerates paper Figures 7 and 8: makespan and average bounded slowdown
// of the FCFS+EASY multi-resource scheduler under the four machine
// assignment strategies (plus an oracle upper bound), on a 50,000-job
// workload sampled from the dataset with replacement.
#include "bench_common.hpp"

#include "core/predictor.hpp"
#include "data/split.hpp"
#include "sched/easy_scheduler.hpp"
#include "sched/workload_gen.hpp"

int main() {
  using namespace mphpc;
  bench::print_header("Figures 7 & 8",
                      "Makespan and bounded slowdown per assignment strategy");

  const workload::AppCatalog apps;
  const arch::SystemCatalog systems;
  const core::Dataset ds = bench::build_standard_dataset();

  // Train the predictor on a 90/10 split (the scheduler then acts on model
  // predictions for every sampled job, as in the paper).
  const auto split = data::train_test_split(ds.num_rows(), 0.10, 42);
  core::CrossArchPredictor predictor;
  Timer timer;
  predictor.train(ds, split.train, &ThreadPool::shared());
  std::printf("model trained in %.1f s\n", timer.seconds());

  const auto predictions = predictor.predict(ds.features());
  const auto jobs = sched::sample_jobs(ds, predictions, apps, 50000, 7);
  const auto machines = sched::default_cluster(systems);
  std::printf("workload: %zu jobs on %zu machines\n\n", jobs.size(),
              machines.size());

  struct Strategy {
    const char* label;
    std::unique_ptr<sched::MachineAssigner> assigner;
  };
  std::vector<Strategy> strategies;
  strategies.push_back({"Round-Robin", std::make_unique<sched::RoundRobinAssigner>()});
  strategies.push_back({"Random", std::make_unique<sched::RandomAssigner>(11)});
  strategies.push_back(
      {"User+RR", std::make_unique<sched::UserRoundRobinAssigner>()});
  strategies.push_back(
      {"Model-based", std::make_unique<sched::ModelBasedAssigner>()});
  strategies.push_back({"Oracle", std::make_unique<sched::OracleAssigner>()});

  TablePrinter table({"strategy", "makespan (h)", "avg bounded slowdown",
                      "avg wait (s)"});
  JsonWriter json;
  json.begin_object().field("experiment", "fig7_8").begin_array("strategies");
  double rr_makespan = 0.0;
  double model_makespan = 0.0;
  for (auto& s : strategies) {
    Timer sim_timer;
    const auto result = sched::simulate(jobs, machines, *s.assigner);
    table.add_row({s.label, format_fixed(result.makespan_s / 3600.0, 3),
                   format_fixed(result.avg_bounded_slowdown, 2),
                   format_fixed(result.avg_wait_s, 1)});
    json.begin_object()
        .field("strategy", s.label)
        .field("makespan_s", result.makespan_s)
        .field("avg_bounded_slowdown", result.avg_bounded_slowdown)
        .field("sim_seconds", sim_timer.seconds())
        .end_object();
    if (std::string(s.label) == "Round-Robin") rr_makespan = result.makespan_s;
    if (std::string(s.label) == "Model-based") model_makespan = result.makespan_s;
  }
  json.end_array().end_object();
  table.print();

  std::printf("\nModel-based vs Round-Robin makespan reduction: %.1f%% "
              "(paper: up to 20%%)\n",
              100.0 * (1.0 - model_makespan / rr_makespan));
  std::printf("(paper ordering: Model-based < User+RR < Round-Robin ~ Random)\n");
  bench::print_json_line(json);
  return 0;
}
