// Regenerates paper Figure 2: MAE (left) and SOS (right) of each ML model
// on the held-out test set, with the paper's 90/10 split protocol.
// Pass --cv to also run the 5-fold cross-validation on the training data.
#include <cstring>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace mphpc;
  bench::print_header("Figure 2", "MAE and SOS per ML model (90/10 split)");

  bool run_cv = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--cv") == 0) run_cv = true;
  }

  const core::Dataset ds = bench::build_standard_dataset();
  const auto x = ds.features();
  const auto y = ds.targets();
  std::printf("dataset: %zu rows\n\n", ds.num_rows());

  core::ComparisonOptions options;
  options.run_cv = run_cv;
  Timer timer;
  const auto results = core::compare_models(x, y, core::kAllModelKinds, options,
                                            &ThreadPool::shared());
  const double elapsed = timer.seconds();

  // Paper-reported reference points (read off Fig. 2).
  const double paper_mae[] = {0.60, 0.40, 0.14, 0.11};
  const double paper_sos[] = {0.52, 0.30, 0.82, 0.86};

  TablePrinter table({"model", "MAE", "paper MAE", "SOS", "paper SOS", "RMSE",
                      "R^2", run_cv ? "CV MAE" : ""});
  JsonWriter json;
  json.begin_object().field("experiment", "fig2").begin_array("models");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    table.add_row({std::string(core::to_string(r.kind)),
                   format_fixed(r.test.mae, 4), format_fixed(paper_mae[i], 2),
                   format_fixed(r.test.sos, 4), format_fixed(paper_sos[i], 2),
                   format_fixed(r.test.rmse, 4), format_fixed(r.test.r2, 4),
                   r.cv_mae ? format_fixed(*r.cv_mae, 4) : ""});
    json.begin_object()
        .field("model", core::to_string(r.kind))
        .field("mae", r.test.mae)
        .field("sos", r.test.sos)
        .field("rmse", r.test.rmse)
        .field("r2", r.test.r2)
        .end_object();
  }
  json.end_array().field("seconds", elapsed).end_object();
  table.print();

  const double improvement = 1.0 - results[3].test.mae / results[0].test.mae;
  std::printf("\nXGBoost improves on the mean baseline by %.1f%% MAE "
              "(paper: 81.6%%)\n", 100.0 * improvement);
  std::printf("elapsed: %.1f s\n", elapsed);
  bench::print_json_line(json);
  return 0;
}
