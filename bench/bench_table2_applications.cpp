// Regenerates paper Table II: the application suite with GPU support.
#include "bench_common.hpp"

int main() {
  using namespace mphpc;
  bench::print_header("Table II", "Applications in the MP-HPC dataset");

  const workload::AppCatalog catalog;
  TablePrinter table({"Application", "Description", "GPU"});
  JsonWriter json;
  json.begin_object().field("experiment", "table2").begin_array("applications");
  int gpu_count = 0;
  for (const auto& app : catalog.all()) {
    table.add_row({app.name, app.description, app.gpu_support ? "yes" : "no"});
    json.begin_object()
        .field("name", app.name)
        .field("gpu", app.gpu_support)
        .field("python_stack", app.python_stack)
        .end_object();
    gpu_count += app.gpu_support ? 1 : 0;
  }
  json.end_array().field("total", catalog.size()).field("gpu_capable", gpu_count);
  json.end_object();
  table.print();
  std::printf("\n%zu applications, %d with GPU support (paper: 20 / 11)\n",
              catalog.size(), gpu_count);
  bench::print_json_line(json);
  return 0;
}
