// Extension ablations: (a) the k-NN comparator the paper's related work
// uses for similar tasks, next to the Fig. 2 models; (b) permutation
// feature importance as a model-agnostic cross-check on the Fig. 6 gain
// ranking (see EXPERIMENTS.md F6).
#include "bench_common.hpp"

#include "core/permutation_importance.hpp"
#include "data/split.hpp"
#include "ml/knn_regressor.hpp"
#include "ml/metrics.hpp"

int main() {
  using namespace mphpc;
  bench::print_header("Extensions", "k-NN comparator + permutation importance");

  const core::Dataset ds = bench::build_standard_dataset();
  const auto x = ds.features();
  const auto y = ds.targets();
  const auto split = data::train_test_split(x.rows(), 0.10, 42);
  const auto x_train = x.select_rows(split.train);
  const auto y_train = y.select_rows(split.train);
  const auto x_test = x.select_rows(split.test);
  const auto y_test = y.select_rows(split.test);

  Timer timer;

  // --- k-NN vs the boosted trees. ---
  TablePrinter knn_table({"model", "MAE", "SOS"});
  JsonWriter json;
  json.begin_object().field("experiment", "extensions").begin_array("knn");
  for (const int k : {1, 4, 8, 16}) {
    ml::KnnOptions options;
    options.k = k;
    ml::KnnRegressor model(options);
    model.fit(x_train, y_train);
    const auto pred = model.predict(x_test);
    const double mae = ml::mean_absolute_error(y_test, pred);
    const double sos = ml::same_order_score(y_test, pred);
    knn_table.add_row({"knn (k=" + std::to_string(k) + ")", format_fixed(mae, 4),
                       format_fixed(sos, 4)});
    json.begin_object().field("k", k).field("mae", mae).field("sos", sos).end_object();
  }
  ml::GbtRegressor gbt(bench::ablation_gbt_options());
  gbt.fit(x_train, y_train, &ThreadPool::shared());
  const auto gbt_pred = gbt.predict(x_test);
  knn_table.add_row({"xgboost (reference)",
                     format_fixed(ml::mean_absolute_error(y_test, gbt_pred), 4),
                     format_fixed(ml::same_order_score(y_test, gbt_pred), 4)});
  knn_table.print();
  json.end_array();

  // --- Permutation importance (on a test subsample for speed). ---
  std::vector<std::size_t> sample;
  for (std::size_t i = 0; i < split.test.size(); i += 2) sample.push_back(split.test[i]);
  const auto x_perm = x.select_rows(sample);
  const auto y_perm = y.select_rows(sample);
  const auto names = core::Dataset::feature_column_names();
  core::PermutationOptions perm_options;
  perm_options.repeats = 2;
  const auto report = core::permutation_report(gbt, x_perm, y_perm, names,
                                               perm_options, &ThreadPool::shared());
  std::printf("\npermutation importance (MAE increase when shuffled), top 10:\n");
  TablePrinter perm_table({"rank", "feature", "delta MAE"});
  json.begin_array("permutation");
  for (std::size_t i = 0; i < report.size() && i < 10; ++i) {
    perm_table.add_row({std::to_string(i + 1), report[i].feature,
                        format_fixed(report[i].importance, 4)});
    json.begin_object()
        .field("feature", report[i].feature)
        .field("delta_mae", report[i].importance)
        .end_object();
  }
  perm_table.print();
  json.end_array().field("seconds", timer.seconds()).end_object();
  std::printf("elapsed: %.1f s\n", timer.seconds());
  bench::print_json_line(json);
  return 0;
}
