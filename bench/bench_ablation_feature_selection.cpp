// Reproduces the §VI-B feature-selection pass: re-train the model on only
// the top-k features by gain importance and compare against the full set.
// The paper notes selection barely moves quality but identifies which
// counters future collections can skip.
#include "bench_common.hpp"

#include "core/importance.hpp"
#include "data/split.hpp"
#include "ml/metrics.hpp"

int main() {
  using namespace mphpc;
  bench::print_header("Ablation (SS VI-B)", "Top-k feature selection refits");

  const core::Dataset ds = bench::build_standard_dataset();
  const auto x = ds.features();
  const auto y = ds.targets();
  const auto names = core::Dataset::feature_column_names();
  const auto split = data::train_test_split(x.rows(), 0.10, 42);
  const auto x_train = x.select_rows(split.train);
  const auto y_train = y.select_rows(split.train);
  const auto x_test = x.select_rows(split.test);
  const auto y_test = y.select_rows(split.test);

  // Reference fit on all features, which also supplies the ranking.
  Timer timer;
  ml::GbtRegressor reference(bench::ablation_gbt_options());
  reference.fit(x_train, y_train, &ThreadPool::shared());
  const auto ref_pred = reference.predict(x_test);
  const double ref_mae = ml::mean_absolute_error(y_test, ref_pred);
  const double ref_sos = ml::same_order_score(y_test, ref_pred);
  const auto report = core::importance_report(reference, names);

  const auto select_columns = [&](const std::vector<std::size_t>& cols,
                                  const ml::Matrix& src) {
    ml::Matrix out(src.rows(), cols.size());
    for (std::size_t r = 0; r < src.rows(); ++r) {
      for (std::size_t c = 0; c < cols.size(); ++c) out(r, c) = src(r, cols[c]);
    }
    return out;
  };

  TablePrinter table({"feature set", "k", "MAE", "SOS", "MAE vs full"});
  table.add_row({"all features", std::to_string(names.size()),
                 format_fixed(ref_mae, 4), format_fixed(ref_sos, 4), "1.00x"});
  JsonWriter json;
  json.begin_object()
      .field("experiment", "feature_selection")
      .field("full_mae", ref_mae)
      .begin_array("topk");
  for (const std::size_t k : {12, 8, 5, 3}) {
    const auto cols = core::top_k_feature_indices(report, names, k);
    ml::GbtRegressor model(bench::ablation_gbt_options());
    model.fit(select_columns(cols, x_train), y_train, &ThreadPool::shared());
    const auto pred = model.predict(select_columns(cols, x_test));
    const double mae = ml::mean_absolute_error(y_test, pred);
    const double sos = ml::same_order_score(y_test, pred);
    table.add_row({"top-k by gain", std::to_string(k), format_fixed(mae, 4),
                   format_fixed(sos, 4), format_fixed(mae / ref_mae, 2) + "x"});
    json.begin_object()
        .field("k", static_cast<long long>(k))
        .field("mae", mae)
        .field("sos", sos)
        .end_object();
  }
  json.end_array().field("seconds", timer.seconds()).end_object();
  table.print();
  std::printf("\n(paper: the top features retain nearly full quality, letting "
              "future collections record fewer counters)\n");
  std::printf("elapsed: %.1f s\n", timer.seconds());
  bench::print_json_line(json);
  return 0;
}
