// Regenerates paper Figure 6: gain-based feature importances of the
// trained XGBoost model (average split gain, averaged over the four RPV
// outputs). See EXPERIMENTS.md F6 for where our ranking deviates from the
// paper's and why.
#include "bench_common.hpp"

#include "core/importance.hpp"
#include "core/predictor.hpp"

int main() {
  using namespace mphpc;
  bench::print_header("Figure 6", "XGBoost gain feature importances");

  const core::Dataset ds = bench::build_standard_dataset();
  core::CrossArchPredictor predictor;
  Timer timer;
  predictor.train(ds, {}, &ThreadPool::shared());

  const auto names = core::Dataset::feature_column_names();
  const auto report = core::importance_report(predictor.model(), names);

  TablePrinter table({"rank", "feature", "importance (avg gain, normalized)"});
  JsonWriter json;
  json.begin_object().field("experiment", "fig6").begin_array("importances");
  for (std::size_t i = 0; i < report.size(); ++i) {
    table.add_row({std::to_string(i + 1), report[i].feature,
                   format_fixed(report[i].importance, 4)});
    json.begin_object()
        .field("feature", report[i].feature)
        .field("importance", report[i].importance)
        .end_object();
  }
  json.end_array().field("seconds", timer.seconds()).end_object();
  table.print();

  std::printf("\npaper top features: branch_intensity > arith_intensity > "
              "sp_fp_intensity > arch/uses_gpu indicators\n");
  std::printf("here the explicit placement features (uses_gpu, cores, arch "
              "one-hots) absorb the CPU<->GPU signal; see EXPERIMENTS.md F6.\n");
  std::printf("elapsed: %.1f s\n", timer.seconds());
  bench::print_json_line(json);
  return 0;
}
