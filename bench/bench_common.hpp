// Shared scaffolding for the experiment benches: standard dataset build,
// the hyper-parameter profiles used in the paper reproduction, and report
// helpers. Every bench prints a human-readable table mirroring the paper
// artefact plus one line of machine-readable JSON.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "arch/system_catalog.hpp"
#include "common/json_writer.hpp"
#include "common/strings.hpp"
#include "common/table_printer.hpp"
#include "common/thread_pool.hpp"
#include "common/timer.hpp"
#include "core/dataset.hpp"
#include "core/model_selection.hpp"
#include "ml/gbt.hpp"
#include "sim/runner.hpp"
#include "workload/app_catalog.hpp"

namespace mphpc::bench {

/// Inputs per app: 47 reproduces the paper-scale dataset (11,280 rows);
/// override with MPHPC_INPUTS_PER_APP for quick runs.
inline int inputs_per_app() {
  if (const char* env = std::getenv("MPHPC_INPUTS_PER_APP")) {
    const int v = std::atoi(env);
    if (v > 0) return v;
  }
  return 47;
}

/// The standard experiment dataset (deterministic, seed 2024).
inline core::Dataset build_standard_dataset() {
  const workload::AppCatalog apps;
  const arch::SystemCatalog systems;
  sim::CampaignOptions options;
  options.inputs_per_app = inputs_per_app();
  return core::build_dataset(
      sim::run_campaign(apps, systems, options, &ThreadPool::shared()));
}

/// Full-quality GBT profile (headline Fig. 2 numbers).
inline ml::GbtOptions full_gbt_options() { return ml::GbtOptions{}; }

/// Lighter GBT profile for the many-refit ablations (Figs. 3-5); trades
/// ~0.005 MAE for a ~3x faster fit.
inline ml::GbtOptions ablation_gbt_options() {
  ml::GbtOptions options;
  options.n_rounds = 150;
  options.max_depth = 6;
  return options;
}

/// Emits the experiment's machine-readable record.
inline void print_json_line(const JsonWriter& writer) {
  std::printf("JSON %s\n", writer.str().c_str());
}

inline void print_header(const char* experiment_id, const char* title) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", experiment_id, title);
  std::printf("==============================================================\n");
}

}  // namespace mphpc::bench
