// Tests for the SWF trace reader (sched/swf.hpp) and the streaming
// workload generator (sched/workload_gen.hpp): both feed externally
// shaped job populations into the scheduling simulation, so parsing must
// fail loudly with context and the mappings must be deterministic.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "arch/system_catalog.hpp"
#include "core/dataset.hpp"
#include "ml/matrix.hpp"
#include "sched/swf.hpp"
#include "sched/workload_gen.hpp"
#include "sim/runner.hpp"
#include "workload/app_catalog.hpp"

namespace mphpc::sched {
namespace {

using arch::SystemId;

/// Shared reduced-size dataset for mapping tests, built once.
class SwfMapping : public ::testing::Test {
 protected:
  struct State {
    workload::AppCatalog apps;
    core::Dataset dataset;
  };

  static const State& state() {
    static const State s = [] {
      workload::AppCatalog apps;
      arch::SystemCatalog systems;
      sim::CampaignOptions campaign;
      campaign.inputs_per_app = 2;
      auto profiles = sim::run_campaign(apps, systems, campaign);
      core::Dataset dataset = core::build_dataset(profiles);
      return State{std::move(apps), std::move(dataset)};
    }();
    return s;
  }
};

SwfTrace parse(const std::string& text) {
  std::istringstream in(text);
  return parse_swf(in, "<test>");
}

/// One 18-field SWF job line with the given leading fields; the rest 0.
std::string swf_line(long long job, double submit, double run, int procs,
                     int requested = -1, int status = 1) {
  std::ostringstream out;
  out << job << " " << submit << " 0 " << run << " " << procs << " 0 0 "
      << requested << " 0 0 " << status << " 0 0 0 0 0 0 0\n";
  return out.str();
}

// ----------------------------------------------------------- parse_swf ----

TEST(SwfParser, ParsesDirectivesAndJobLines) {
  const auto trace = parse(
      "; Version: 2.2\n"
      ";   MaxNodes: 1024\n"
      "; SomeFutureDirective: kept verbatim\n"
      "; a bare comment without a colon\n"
      "\n" +
      swf_line(1, 0.0, 3600.0, 72, 72) + swf_line(2, 10.5, 120.0, 1));
  ASSERT_EQ(trace.directives.size(), 4u);
  EXPECT_EQ(trace.directives[0].first, "Version");
  EXPECT_EQ(trace.directives[0].second, "2.2");
  EXPECT_EQ(trace.directives[1].first, "MaxNodes");
  EXPECT_EQ(trace.directives[1].second, "1024");
  // Unknown directives are an open vocabulary: preserved, never rejected.
  EXPECT_EQ(trace.directives[2].first, "SomeFutureDirective");
  EXPECT_EQ(trace.directives[3].first, "a bare comment without a colon");
  EXPECT_EQ(trace.directives[3].second, "");

  ASSERT_EQ(trace.jobs.size(), 2u);
  EXPECT_EQ(trace.jobs[0].job_number, 1);
  EXPECT_EQ(trace.jobs[0].submit_s, 0.0);
  EXPECT_EQ(trace.jobs[0].run_s, 3600.0);
  EXPECT_EQ(trace.jobs[0].procs, 72);
  EXPECT_EQ(trace.jobs[0].requested_procs, 72);
  EXPECT_EQ(trace.jobs[0].status, 1);
  EXPECT_EQ(trace.jobs[1].job_number, 2);
  EXPECT_EQ(trace.jobs[1].submit_s, 10.5);
  EXPECT_EQ(trace.jobs[1].requested_procs, -1);
}

TEST(SwfParser, EmptyStreamYieldsEmptyTrace) {
  const auto trace = parse("");
  EXPECT_TRUE(trace.directives.empty());
  EXPECT_TRUE(trace.jobs.empty());
  const auto blank = parse("\n   \n\t\n");
  EXPECT_TRUE(blank.jobs.empty());
}

TEST(SwfParser, TruncatedJobLineDiagnosesOriginAndLineNumber) {
  const std::string text =
      "; Version: 2.2\n" + swf_line(1, 0.0, 60.0, 1) +
      "2 0 0 60 1 0 0 -1 0 0 1 0 0 0 0 0 0\n";  // 17 fields, line 3
  try {
    parse(text);
    FAIL() << "truncated line must throw";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("<test>:3"), std::string::npos) << what;
    EXPECT_NE(what.find("expected 18"), std::string::npos) << what;
    EXPECT_NE(what.find("got 17"), std::string::npos) << what;
  }
}

TEST(SwfParser, NonNumericFieldDiagnosesFieldAndToken) {
  try {
    parse("1 0 0 60 abc 0 0 -1 0 0 1 0 0 0 0 0 0 0\n");
    FAIL() << "non-numeric field must throw";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("<test>:1"), std::string::npos) << what;
    EXPECT_NE(what.find("field 5"), std::string::npos) << what;
    EXPECT_NE(what.find("'abc'"), std::string::npos) << what;
  }
}

TEST(SwfParser, OverlongJobLineIsRejected) {
  const std::string line19 =
      "1 0 0 60 1 0 0 -1 0 0 1 0 0 0 0 0 0 0 99\n";  // 19 fields
  EXPECT_THROW(parse(line19), std::runtime_error);
}

TEST(SwfParser, MissingFileThrows) {
  EXPECT_THROW(read_swf_file("/nonexistent/trace.swf"), std::runtime_error);
}

// ------------------------------------------------------- jobs_from_swf ----

TEST_F(SwfMapping, MapsRuntimeNodesAndSubmitOntoJobs) {
  const auto& s = state();
  const auto trace = parse(swf_line(1, 0.0, 3600.0, 72) +     // 2 nodes
                           swf_line(2, 100.0, 120.0, 1) +     // 1 node
                           swf_line(3, 200.0, 60.0, 720) +    // clamped to 2
                           swf_line(4, -5.0, 30.0, -1, 40));  // requested used
  SwfMapOptions options;
  options.procs_per_node = 36;
  options.max_nodes = 2;
  options.seed = 7;
  SwfMapStats stats;
  const auto jobs = jobs_from_swf(trace, s.dataset, s.apps, options, &stats);

  ASSERT_EQ(jobs.size(), 4u);
  EXPECT_EQ(stats.mapped, 4u);
  EXPECT_EQ(stats.skipped_no_runtime, 0u);
  EXPECT_EQ(stats.skipped_no_procs, 0u);

  // Dense sequential ids in trace order; traced-system runtime is the SWF
  // run time *exactly*, and the predicted RPV matches the (rescaled)
  // runtimes bit-for-bit.
  const double run_s[] = {3600.0, 120.0, 60.0, 30.0};
  const int nodes[] = {2, 1, 2, 2};
  const double submit[] = {0.0, 100.0, 200.0, 0.0};  // negative clamped
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    EXPECT_EQ(jobs[j].id, static_cast<int>(j));
    EXPECT_EQ(jobs[j].runtime[static_cast<std::size_t>(SystemId::kQuartz)],
              run_s[j]);
    EXPECT_EQ(jobs[j].nodes_required, nodes[j]);
    EXPECT_EQ(jobs[j].submit_s, submit[j]);
    EXPECT_EQ(jobs[j].gpu_capable, s.apps.get(jobs[j].app).gpu_support);
    const auto expected =
        core::Rpv::relative_to(jobs[j].runtime, SystemId::kQuartz);
    EXPECT_EQ(jobs[j].predicted.values(), expected.values());
    for (const double t : jobs[j].runtime) {
      EXPECT_TRUE(std::isfinite(t));
      EXPECT_GT(t, 0.0);
    }
  }
}

TEST_F(SwfMapping, PreservesDatasetRowRpvUpToRescaling) {
  // Each mapped job borrows a dataset row's cross-architecture shape: its
  // runtime vector must be a positive scalar multiple of some row's times.
  const auto& s = state();
  const auto trace = parse(swf_line(1, 0.0, 500.0, 36));
  const auto jobs = jobs_from_swf(trace, s.dataset, s.apps, {});
  ASSERT_EQ(jobs.size(), 1u);
  const auto& job = jobs[0];
  bool matched = false;
  for (std::size_t row = 0; row < s.dataset.num_rows() && !matched; ++row) {
    if (s.dataset.apps()[row] != job.app) continue;
    const double scale =
        job.runtime[0] / s.dataset.time_on(row, SystemId::kQuartz);
    bool all = true;
    for (std::size_t k = 0; k < arch::kNumSystems; ++k) {
      const double want =
          s.dataset.time_on(row, static_cast<SystemId>(k)) * scale;
      all = all && std::abs(job.runtime[k] - want) <=
                       1e-12 * std::max(job.runtime[k], want);
    }
    matched = matched || all;
  }
  EXPECT_TRUE(matched) << "job runtimes match no dataset row up to scale";
}

TEST_F(SwfMapping, SkipsUnusableJobsAndTallies) {
  const auto& s = state();
  const auto trace = parse(swf_line(1, 0.0, -1.0, 36) +      // unknown runtime
                           swf_line(2, 0.0, 0.0, 36) +       // zero runtime
                           swf_line(3, 0.0, 60.0, -1, -1) +  // no proc count
                           swf_line(4, 0.0, 60.0, 36));      // fine
  SwfMapStats stats;
  const auto jobs = jobs_from_swf(trace, s.dataset, s.apps, {}, &stats);
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_EQ(jobs[0].id, 0);  // ids stay dense after skips
  EXPECT_EQ(stats.mapped, 1u);
  EXPECT_EQ(stats.skipped_no_runtime, 2u);
  EXPECT_EQ(stats.skipped_no_procs, 1u);
}

TEST_F(SwfMapping, MappingIsDeterministicPerSeed) {
  const auto& s = state();
  std::string text;
  for (int i = 0; i < 50; ++i) {
    text += swf_line(i, 10.0 * i, 60.0 + i, 1 + i);
  }
  const auto trace = parse(text);
  SwfMapOptions options;
  options.seed = 21;
  const auto a = jobs_from_swf(trace, s.dataset, s.apps, options);
  const auto b = jobs_from_swf(trace, s.dataset, s.apps, options);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t j = 0; j < a.size(); ++j) {
    EXPECT_EQ(a[j].app, b[j].app);
    EXPECT_EQ(a[j].runtime, b[j].runtime);
    EXPECT_EQ(a[j].predicted.values(), b[j].predicted.values());
  }
}

// ------------------------------------------- streaming workload (scale) ----

/// Predictions stand-in: the dataset's own true time ratios (tests only
/// need *some* deterministic rows x 4 matrix).
ml::Matrix true_ratio_matrix(const core::Dataset& dataset) {
  ml::Matrix m(dataset.num_rows(), arch::kNumSystems);
  for (std::size_t r = 0; r < dataset.num_rows(); ++r) {
    const double base = dataset.time_on(r, SystemId::kQuartz);
    for (std::size_t k = 0; k < arch::kNumSystems; ++k) {
      m(r, k) = dataset.time_on(r, static_cast<SystemId>(k)) / base;
    }
  }
  return m;
}

TEST_F(SwfMapping, StreamJobsMatchesSampleJobsBitwise) {
  const auto& s = state();
  const auto predictions = true_ratio_matrix(s.dataset);
  const auto sampled = sample_jobs(s.dataset, predictions, s.apps, 500, 99);

  std::vector<Job> streamed;
  WorkloadOptions options;
  options.count = 500;
  options.seed = 99;
  stream_jobs(
      s.dataset,
      [&predictions](std::size_t row) {
        std::array<double, arch::kNumSystems> ratios{};
        for (std::size_t k = 0; k < arch::kNumSystems; ++k) {
          ratios[k] = predictions(row, k);
        }
        return core::Rpv(ratios);
      },
      s.apps, options, [&streamed](Job&& job) { streamed.push_back(job); });

  ASSERT_EQ(streamed.size(), sampled.size());
  for (std::size_t j = 0; j < sampled.size(); ++j) {
    EXPECT_EQ(streamed[j].id, sampled[j].id);
    EXPECT_EQ(streamed[j].app, sampled[j].app);
    EXPECT_EQ(streamed[j].gpu_capable, sampled[j].gpu_capable);
    EXPECT_EQ(streamed[j].nodes_required, sampled[j].nodes_required);
    EXPECT_EQ(streamed[j].runtime, sampled[j].runtime);
    EXPECT_EQ(streamed[j].predicted.values(), sampled[j].predicted.values());
    EXPECT_EQ(streamed[j].submit_s, sampled[j].submit_s);
  }
}

TEST_F(SwfMapping, ArrivalRateSpreadsSubmitsWithoutPerturbingRows) {
  // Arrivals draw from an independent derived stream: turning them on
  // must keep the sampled rows (app, runtimes, predictions) identical and
  // only add strictly increasing submit times.
  const auto& s = state();
  const auto predicted = [](std::size_t) { return core::Rpv({1, 1, 1, 1}); };

  const auto collect = [&](double rate) {
    std::vector<Job> jobs;
    WorkloadOptions options;
    options.count = 300;
    options.seed = 42;
    options.arrival_rate_per_s = rate;
    stream_jobs(s.dataset, predicted, s.apps, options,
                [&jobs](Job&& job) { jobs.push_back(job); });
    return jobs;
  };

  const auto batch = collect(0.0);
  const auto trickle = collect(0.05);
  ASSERT_EQ(batch.size(), trickle.size());
  double last_submit = 0.0;
  for (std::size_t j = 0; j < batch.size(); ++j) {
    EXPECT_EQ(batch[j].app, trickle[j].app);
    EXPECT_EQ(batch[j].runtime, trickle[j].runtime);
    EXPECT_EQ(batch[j].submit_s, 0.0);
    EXPECT_GT(trickle[j].submit_s, last_submit);
    last_submit = trickle[j].submit_s;
  }
}

TEST_F(SwfMapping, SampleJobsShapeMismatchThrowsWithBothShapes) {
  const auto& s = state();
  const ml::Matrix wrong(3, arch::kNumSystems);
  try {
    (void)sample_jobs(s.dataset, wrong, s.apps, 10, 1);
    FAIL() << "shape mismatch must throw";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("3x4"), std::string::npos) << what;
    EXPECT_NE(what.find(std::to_string(s.dataset.num_rows()) + "x4"),
              std::string::npos)
        << what;
  }
}

}  // namespace
}  // namespace mphpc::sched
