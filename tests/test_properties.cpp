// Property-based tests: invariants checked over randomized inputs and
// parameter sweeps (seeded, so failures are reproducible).
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "arch/system_catalog.hpp"
#include "common/distributions.hpp"
#include "common/rng.hpp"
#include "core/rpv.hpp"
#include "data/csv.hpp"
#include "data/transforms.hpp"
#include "ml/decision_tree.hpp"
#include "ml/gbt.hpp"
#include "ml/mean_regressor.hpp"
#include "ml/metrics.hpp"
#include "sched/assigners.hpp"
#include "sched/easy_scheduler.hpp"
#include "sim/profiler.hpp"
#include "workload/app_catalog.hpp"

namespace mphpc {
namespace {

// ------------------------------------------------------ RPV invariants ----

class RpvProperty : public ::testing::TestWithParam<std::uint64_t> {};

core::SystemTimes random_times(Rng& rng) {
  core::SystemTimes times{};
  for (double& t : times) t = rng.uniform(0.1, 100.0);
  return times;
}

TEST_P(RpvProperty, ReferenceEntryIsOne) {
  Rng rng(GetParam());
  for (int i = 0; i < 50; ++i) {
    const auto times = random_times(rng);
    for (const arch::SystemId ref : arch::kAllSystems) {
      EXPECT_DOUBLE_EQ(core::Rpv::relative_to(times, ref).time_ratio(ref), 1.0);
    }
  }
}

TEST_P(RpvProperty, MinMaxBounds) {
  Rng rng(GetParam() + 1);
  for (int i = 0; i < 50; ++i) {
    const auto times = random_times(rng);
    const auto rpv_min = core::Rpv::relative_to_min(times);
    const auto rpv_max = core::Rpv::relative_to_max(times);
    for (std::size_t k = 0; k < arch::kNumSystems; ++k) {
      EXPECT_LE(rpv_min[k], 1.0 + 1e-12);
      EXPECT_GE(rpv_max[k], 1.0 - 1e-12);
    }
  }
}

TEST_P(RpvProperty, OrderingConsistentAcrossReferences) {
  // The fastest/slowest system must not depend on the reference chosen.
  Rng rng(GetParam() + 2);
  for (int i = 0; i < 50; ++i) {
    const auto times = random_times(rng);
    const auto base = core::Rpv::relative_to(times, arch::SystemId::kQuartz);
    for (const arch::SystemId ref : arch::kAllSystems) {
      const auto rpv = core::Rpv::relative_to(times, ref);
      EXPECT_EQ(rpv.fastest(), base.fastest());
      EXPECT_EQ(rpv.slowest(), base.slowest());
      EXPECT_EQ(rpv.order(), base.order());
    }
  }
}

TEST_P(RpvProperty, OrderIsSortedByTimeRatio) {
  Rng rng(GetParam() + 3);
  const auto times = random_times(rng);
  const auto rpv = core::Rpv::relative_to(times, arch::SystemId::kRuby);
  const auto order = rpv.order();
  for (std::size_t i = 1; i < order.size(); ++i) {
    EXPECT_LE(rpv.time_ratio(order[i - 1]), rpv.time_ratio(order[i]));
  }
  EXPECT_EQ(order[0], rpv.fastest());
  EXPECT_EQ(order[3], rpv.slowest());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RpvProperty, ::testing::Values(1u, 2u, 3u, 4u, 5u));

// --------------------------------------------------- metric invariants ----

class MetricProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MetricProperty, PerfectPredictionScoresPerfectly) {
  Rng rng(GetParam());
  ml::Matrix m(20, 4);
  for (double& v : m.flat()) v = rng.uniform(-5.0, 5.0);
  EXPECT_EQ(ml::mean_absolute_error(m, m), 0.0);
  EXPECT_EQ(ml::root_mean_squared_error(m, m), 0.0);
  EXPECT_EQ(ml::same_order_score(m, m), 1.0);
  EXPECT_DOUBLE_EQ(ml::r2_score(m, m), 1.0);
}

TEST_P(MetricProperty, RmseDominatesMae) {
  Rng rng(GetParam() + 10);
  ml::Matrix truth(30, 3);
  ml::Matrix pred(30, 3);
  for (double& v : truth.flat()) v = rng.uniform(-5.0, 5.0);
  for (double& v : pred.flat()) v = rng.uniform(-5.0, 5.0);
  EXPECT_GE(ml::root_mean_squared_error(truth, pred),
            ml::mean_absolute_error(truth, pred) - 1e-12);
}

TEST_P(MetricProperty, SosInvariantUnderMonotoneTransform) {
  // Applying a strictly increasing function to predictions must not
  // change the same-order score.
  Rng rng(GetParam() + 20);
  ml::Matrix truth(25, 4);
  ml::Matrix pred(25, 4);
  for (double& v : truth.flat()) v = rng.uniform(0.0, 10.0);
  for (double& v : pred.flat()) v = rng.uniform(0.0, 10.0);
  ml::Matrix transformed = pred;
  for (double& v : transformed.flat()) v = std::exp(0.3 * v) + 2.0;
  EXPECT_EQ(ml::same_order_score(truth, pred),
            ml::same_order_score(truth, transformed));
}

INSTANTIATE_TEST_SUITE_P(Seeds, MetricProperty, ::testing::Values(7u, 8u, 9u));

// ----------------------------------------------- standardizer property ----

class StandardizerProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StandardizerProperty, TransformedStatsAreStandard) {
  Rng rng(GetParam());
  std::vector<double> v(500);
  const double scale = rng.uniform(0.1, 100.0);
  const double shift = rng.uniform(-50.0, 50.0);
  for (double& x : v) x = shift + scale * rng.uniform();
  data::Standardizer s;
  s.fit(v);
  s.transform(v);
  double mean = 0.0;
  for (const double x : v) mean += x;
  mean /= static_cast<double>(v.size());
  double var = 0.0;
  for (const double x : v) var += (x - mean) * (x - mean);
  var /= static_cast<double>(v.size());
  EXPECT_NEAR(mean, 0.0, 1e-9);
  EXPECT_NEAR(var, 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StandardizerProperty,
                         ::testing::Values(11u, 12u, 13u, 14u));

// ------------------------------------------------- CSV round-trip fuzz ----

class CsvRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CsvRoundTrip, RandomTablesSurvive) {
  Rng rng(GetParam());
  data::Table t;
  const std::size_t rows = 1 + rng.below(40);
  std::vector<std::string> texts;
  const char* samples[] = {"plain", "with,comma", "with\"quote", "", "sp ace",
                           "semi;colon"};
  for (std::size_t r = 0; r < rows; ++r) {
    texts.push_back(std::string(samples[rng.below(6)]) + std::to_string(r));
  }
  std::vector<double> nums;
  for (std::size_t r = 0; r < rows; ++r) nums.push_back(normal(rng, 0.0, 1e6));
  t.add_text_column("label", texts);
  t.add_numeric_column("value", nums);

  std::ostringstream out;
  data::write_csv(t, out);
  std::istringstream in(out.str());
  const data::Table r = data::read_csv(in, {"label"});
  EXPECT_EQ(r.text("label"), t.text("label"));
  EXPECT_EQ(r.numeric("value"), t.numeric("value"));  // exact round-trip
}

INSTANTIATE_TEST_SUITE_P(Seeds, CsvRoundTrip,
                         ::testing::Values(21u, 22u, 23u, 24u, 25u, 26u));

// -------------------------------------------- perf model monotonicity ----

class PerfModelPerApp : public ::testing::TestWithParam<int> {};

TEST_P(PerfModelPerApp, TimeMonotoneInScale) {
  const workload::AppCatalog apps;
  const arch::SystemCatalog systems;
  const auto& app = apps.all()[static_cast<std::size_t>(GetParam())];
  for (const auto& sys : systems.all()) {
    const auto rc =
        workload::make_run_config(app, sys, workload::ScaleClass::kOneNode);
    double prev = 0.0;
    for (const double scale : {0.5, 1.0, 2.0, 4.0, 8.0}) {
      const double t = sim::predict_time(app, scale, rc, sys).total_s();
      EXPECT_GT(t, prev) << app.name << " on " << sys.name;
      prev = t;
    }
  }
}

TEST_P(PerfModelPerApp, ProfilerFullyDeterministic) {
  const workload::AppCatalog apps;
  const arch::SystemCatalog systems;
  const auto& app = apps.all()[static_cast<std::size_t>(GetParam())];
  const sim::Profiler profiler(99);
  const auto inputs = workload::make_inputs(app, 1, 99);
  for (const auto& sys : systems.all()) {
    for (const auto scale : workload::kAllScaleClasses) {
      const auto a = profiler.profile(app, inputs[0], scale, sys);
      const auto b = profiler.profile(app, inputs[0], scale, sys);
      EXPECT_EQ(a.time_s, b.time_s);
      EXPECT_EQ(a.counters, b.counters);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllApps, PerfModelPerApp, ::testing::Range(0, 20));

// ------------------------------------------------ scheduler invariants ----

class SchedulerProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SchedulerProperty, ConservationAndCapacity) {
  Rng rng(GetParam());
  std::vector<sched::Job> jobs;
  const int n = 150;
  for (int i = 0; i < n; ++i) {
    sched::Job job;
    job.id = i;
    job.app = "App" + std::to_string(i % 7);
    job.gpu_capable = rng.bernoulli(0.5);
    job.nodes_required = rng.bernoulli(0.3) ? 2 : 1;
    for (double& t : job.runtime) t = rng.uniform(1.0, 30.0);
    job.predicted = core::Rpv::relative_to(job.runtime, arch::SystemId::kQuartz);
    jobs.push_back(std::move(job));
  }
  const std::vector<sched::Machine> machines = {{arch::SystemId::kQuartz, 4},
                                                {arch::SystemId::kRuby, 3},
                                                {arch::SystemId::kLassen, 2},
                                                {arch::SystemId::kCorona, 2}};
  sched::ModelBasedAssigner assigner;
  const auto result = sched::simulate(jobs, machines, assigner);

  // Every job ran exactly once, with its runtime on its assigned machine.
  ASSERT_EQ(result.outcomes.size(), jobs.size());
  double total_node_seconds = 0.0;
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    const auto& o = result.outcomes[j];
    const double expected =
        jobs[j].runtime[static_cast<std::size_t>(o.machine)];
    EXPECT_NEAR(o.run_s(), expected, 1e-9);
    EXPECT_LE(o.end_s, result.makespan_s + 1e-9);
    total_node_seconds += expected * jobs[j].nodes_required;
  }
  double accounted = 0.0;
  for (const double ns : result.node_seconds) accounted += ns;
  EXPECT_NEAR(accounted, total_node_seconds, 1e-6);

  // Makespan lower bound: total work cannot exceed cluster capacity.
  int total_nodes = 0;
  for (const auto& m : machines) total_nodes += m.total_nodes;
  EXPECT_GE(result.makespan_s * total_nodes, total_node_seconds - 1e-6);
}

TEST_P(SchedulerProperty, BackfillNeverStarvesHead) {
  // FCFS fairness: with EASY backfilling, a job's start time can exceed
  // an earlier job's start by at most the reservation dynamics — verify
  // the weaker but exact invariant that the queue head at any reservation
  // is never passed by a job that delays it (no job starting later than
  // the head's eventual start occupies the head's machine at that start).
  Rng rng(GetParam() + 100);
  std::vector<sched::Job> jobs;
  for (int i = 0; i < 80; ++i) {
    sched::Job job;
    job.id = i;
    job.nodes_required = rng.bernoulli(0.4) ? 2 : 1;
    for (double& t : job.runtime) t = rng.uniform(1.0, 20.0);
    job.predicted = core::Rpv::relative_to(job.runtime, arch::SystemId::kQuartz);
    jobs.push_back(std::move(job));
  }
  const std::vector<sched::Machine> machines = {{arch::SystemId::kQuartz, 2},
                                                {arch::SystemId::kRuby, 2},
                                                {arch::SystemId::kLassen, 2},
                                                {arch::SystemId::kCorona, 2}};
  sched::RoundRobinAssigner assigner;
  const auto result = sched::simulate(jobs, machines, assigner);
  for (const auto& o : result.outcomes) {
    EXPECT_GE(o.start_s, 0.0);
    EXPECT_GT(o.run_s(), 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerProperty,
                         ::testing::Values(31u, 32u, 33u, 34u));

// ---------------------------------------------- GBT training invariants ----

class GbtProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GbtProperty, TrainingReducesInSampleError) {
  Rng rng(GetParam());
  ml::Matrix x(200, 4);
  ml::Matrix y(200, 2);
  for (std::size_t r = 0; r < 200; ++r) {
    for (std::size_t c = 0; c < 4; ++c) x(r, c) = rng.uniform();
    y(r, 0) = x(r, 0) * 2.0 + x(r, 1);
    y(r, 1) = std::sin(3.0 * x(r, 2));
  }
  ml::MeanRegressor mean;
  mean.fit(x, y);
  const double baseline = ml::mean_absolute_error(y, mean.predict(x));

  ml::GbtOptions options;
  options.n_rounds = 30;
  options.max_depth = 4;
  options.seed = GetParam();
  ml::GbtRegressor model(options);
  model.fit(x, y);
  EXPECT_LT(ml::mean_absolute_error(y, model.predict(x)), 0.5 * baseline);
}

TEST_P(GbtProperty, RefitIsIdempotent) {
  Rng rng(GetParam() + 7);
  ml::Matrix x(100, 3);
  ml::Matrix y(100, 1);
  for (std::size_t r = 0; r < 100; ++r) {
    for (std::size_t c = 0; c < 3; ++c) x(r, c) = rng.uniform();
    y(r, 0) = x(r, 0) - x(r, 2);
  }
  ml::GbtOptions options;
  options.n_rounds = 15;
  options.max_depth = 3;
  ml::GbtRegressor model(options);
  model.fit(x, y);
  const auto first = model.predict(x);
  model.fit(x, y);  // refit replaces state entirely
  const auto second = model.predict(x);
  for (std::size_t i = 0; i < first.flat().size(); ++i) {
    EXPECT_EQ(first.flat()[i], second.flat()[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GbtProperty, ::testing::Values(41u, 42u, 43u));

}  // namespace
}  // namespace mphpc
