// Tests for src/core: RPVs, feature pipeline, dataset assembly, the
// predictor, model selection, importance reporting.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <fstream>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "arch/system_catalog.hpp"
#include "common/error.hpp"
#include "core/dataset.hpp"
#include "ml/mean_regressor.hpp"
#include "core/feature_pipeline.hpp"
#include "core/importance.hpp"
#include "core/model_selection.hpp"
#include "core/predictor.hpp"
#include "core/rpv.hpp"
#include "sim/runner.hpp"
#include "workload/app_catalog.hpp"

namespace mphpc::core {
namespace {

using arch::SystemId;

// ------------------------------------------------------------------- rpv ----

TEST(Rpv, PaperWorkedExample) {
  // TestApp on X=10 min, Y=8 min, Z=21 min -> relative to X: [1.0, 0.8, 2.1].
  // Our vectors have four entries; use a fourth system at 15 min.
  const SystemTimes times = {10.0, 8.0, 21.0, 15.0};
  const Rpv rpv = Rpv::relative_to(times, SystemId::kQuartz);
  EXPECT_DOUBLE_EQ(rpv[0], 1.0);
  EXPECT_DOUBLE_EQ(rpv[1], 0.8);
  EXPECT_DOUBLE_EQ(rpv[2], 2.1);
  EXPECT_DOUBLE_EQ(rpv[3], 1.5);
}

TEST(Rpv, ReferenceEntryIsAlwaysOne) {
  const SystemTimes times = {3.0, 7.0, 2.0, 11.0};
  for (const SystemId ref : arch::kAllSystems) {
    EXPECT_DOUBLE_EQ(Rpv::relative_to(times, ref).time_ratio(ref), 1.0);
  }
}

TEST(Rpv, PlausibilityGuard) {
  const RpvGuardOptions bounds;  // defaults: [1e-3, 1e3]
  EXPECT_TRUE(is_plausible_rpv(Rpv({1.0, 0.8, 2.1, 1.5}), bounds));
  EXPECT_TRUE(is_plausible_rpv(Rpv({1e-3, 1e3, 1.0, 1.0}), bounds));  // inclusive
  EXPECT_FALSE(is_plausible_rpv(
      Rpv({std::numeric_limits<double>::quiet_NaN(), 1.0, 1.0, 1.0}), bounds));
  EXPECT_FALSE(is_plausible_rpv(
      Rpv({std::numeric_limits<double>::infinity(), 1.0, 1.0, 1.0}), bounds));
  EXPECT_FALSE(is_plausible_rpv(Rpv({1.0, -0.5, 1.0, 1.0}), bounds));
  EXPECT_FALSE(is_plausible_rpv(Rpv({1.0, 0.0, 1.0, 1.0}), bounds));
  EXPECT_FALSE(is_plausible_rpv(Rpv({1.0, 1.0, 1e9, 1.0}), bounds));
}

TEST(Rpv, NeutralRpvIsAllOnes) {
  const Rpv rpv = neutral_rpv();
  for (std::size_t k = 0; k < arch::kNumSystems; ++k) EXPECT_DOUBLE_EQ(rpv[k], 1.0);
  EXPECT_TRUE(is_plausible_rpv(rpv, {}));
}

TEST(Rpv, RelativeToMinAllEntriesAtMostOne) {
  // "min" = lowest performance = largest time.
  const SystemTimes times = {3.0, 7.0, 2.0, 11.0};
  const Rpv rpv = Rpv::relative_to_min(times);
  for (std::size_t k = 0; k < 4; ++k) EXPECT_LE(rpv[k], 1.0);
  EXPECT_DOUBLE_EQ(rpv.time_ratio(SystemId::kCorona), 1.0);
}

TEST(Rpv, RelativeToMaxAllEntriesAtLeastOne) {
  const SystemTimes times = {3.0, 7.0, 2.0, 11.0};
  const Rpv rpv = Rpv::relative_to_max(times);
  for (std::size_t k = 0; k < 4; ++k) EXPECT_GE(rpv[k], 1.0);
  EXPECT_DOUBLE_EQ(rpv.time_ratio(SystemId::kLassen), 1.0);
}

TEST(Rpv, FastestAndSlowest) {
  const SystemTimes times = {3.0, 7.0, 2.0, 11.0};
  const Rpv rpv = Rpv::relative_to(times, SystemId::kQuartz);
  EXPECT_EQ(rpv.fastest(), SystemId::kLassen);
  EXPECT_EQ(rpv.slowest(), SystemId::kCorona);
}

TEST(Rpv, OrderIsSorted) {
  const SystemTimes times = {3.0, 7.0, 2.0, 11.0};
  const auto order = Rpv::relative_to(times, SystemId::kRuby).order();
  EXPECT_EQ(order[0], SystemId::kLassen);
  EXPECT_EQ(order[1], SystemId::kQuartz);
  EXPECT_EQ(order[2], SystemId::kRuby);
  EXPECT_EQ(order[3], SystemId::kCorona);
}

TEST(Rpv, SpeedupIsReciprocal) {
  const SystemTimes times = {10.0, 5.0, 20.0, 10.0};
  const Rpv rpv = Rpv::relative_to(times, SystemId::kQuartz);
  EXPECT_DOUBLE_EQ(rpv.speedup(SystemId::kRuby), 2.0);
  EXPECT_DOUBLE_EQ(rpv.speedup(SystemId::kLassen), 0.5);
}

TEST(Rpv, RejectsNonPositiveTimes) {
  const SystemTimes times = {1.0, 0.0, 1.0, 1.0};
  EXPECT_THROW(Rpv::relative_to(times, SystemId::kQuartz), ContractViolation);
}

// ------------------------------------------------------ feature pipeline ----

class PipelineTest : public ::testing::Test {
 protected:
  workload::AppCatalog apps_;
  arch::SystemCatalog systems_;
  sim::Profiler profiler_{123};

  sim::RunProfile profile(const char* app, const char* system,
                          workload::ScaleClass scale) {
    const auto& sig = apps_.get(app);
    const auto inputs = workload::make_inputs(sig, 1, 123);
    return profiler_.profile(sig, inputs[0], scale, systems_.get(system));
  }
};

TEST_F(PipelineTest, TwentyOneFeatures) {
  EXPECT_EQ(FeaturePipeline::kNumFeatures, 21u);  // paper §V-D
  EXPECT_EQ(FeaturePipeline::feature_names().size(), 21u);
}

TEST_F(PipelineTest, IntensitiesAreRatios) {
  const auto p = profile("CoMD", "quartz", workload::ScaleClass::kOneNode);
  const auto f = FeaturePipeline::raw_features(p);
  double intensity_sum = 0.0;
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_GE(f[i], 0.0);
    EXPECT_LE(f[i], 1.0);
    intensity_sum += f[i];
  }
  EXPECT_LE(intensity_sum, 1.05);  // jitter can nudge past the exact mix sum
}

TEST_F(PipelineTest, OneHotMatchesSourceSystem) {
  const auto p = profile("CoMD", "lassen", workload::ScaleClass::kOneNode);
  const auto f = FeaturePipeline::raw_features(p);
  EXPECT_EQ(f[17], 0.0);  // quartz
  EXPECT_EQ(f[18], 0.0);  // ruby
  EXPECT_EQ(f[19], 1.0);  // lassen
  EXPECT_EQ(f[20], 0.0);  // corona
}

TEST_F(PipelineTest, UsesGpuFlag) {
  const auto gpu = profile("CoMD", "lassen", workload::ScaleClass::kOneNode);
  EXPECT_EQ(FeaturePipeline::raw_features(gpu)[16], 1.0);
  const auto cpu = profile("SW4lite", "lassen", workload::ScaleClass::kOneNode);
  EXPECT_EQ(FeaturePipeline::raw_features(cpu)[16], 0.0);
}

TEST_F(PipelineTest, NodesAndCores) {
  const auto p = profile("miniVite", "ruby", workload::ScaleClass::kTwoNodes);
  const auto f = FeaturePipeline::raw_features(p);
  EXPECT_EQ(f[14], 2.0);    // nodes
  EXPECT_EQ(f[15], 112.0);  // cores = 2 x 56
}

TEST_F(PipelineTest, StandardizationZeroesMeans) {
  // Fit over a batch of raw rows, then check the standardized columns.
  std::vector<double> raw;
  std::vector<sim::RunProfile> profiles;
  for (const auto app : {"CoMD", "AMG", "SWFFT", "XSBench"}) {
    for (const auto sys : {"quartz", "ruby", "lassen", "corona"}) {
      profiles.push_back(profile(app, sys, workload::ScaleClass::kOneNode));
    }
  }
  for (const auto& p : profiles) {
    const auto f = FeaturePipeline::raw_features(p);
    raw.insert(raw.end(), f.begin(), f.end());
  }
  FeaturePipeline pipeline;
  pipeline.fit(raw, profiles.size());
  double sum = 0.0;
  for (const auto& p : profiles) {
    sum += pipeline.features(p)[FeaturePipeline::kFirstStandardized];
  }
  EXPECT_NEAR(sum / static_cast<double>(profiles.size()), 0.0, 1e-9);
}

TEST_F(PipelineTest, SerializeRoundTrips) {
  std::vector<double> raw;
  const auto p1 = profile("CoMD", "quartz", workload::ScaleClass::kOneCore);
  const auto p2 = profile("AMG", "corona", workload::ScaleClass::kOneNode);
  for (const auto* p : {&p1, &p2}) {
    const auto f = FeaturePipeline::raw_features(*p);
    raw.insert(raw.end(), f.begin(), f.end());
  }
  FeaturePipeline pipeline;
  pipeline.fit(raw, 2);
  const FeaturePipeline restored = FeaturePipeline::deserialize(pipeline.serialize());
  const auto a = pipeline.features(p1);
  const auto b = restored.features(p1);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_DOUBLE_EQ(a[i], b[i]);
}

TEST_F(PipelineTest, UnfittedTransformThrows) {
  const FeaturePipeline pipeline;
  FeaturePipeline::FeatureVector f{};
  EXPECT_THROW(pipeline.transform(f), ContractViolation);
}

// ---------------------------------------------------------------- dataset ----

class DatasetTest : public ::testing::Test {
 protected:
  static const Dataset& dataset() {
    static const Dataset ds = [] {
      const workload::AppCatalog apps;
      const arch::SystemCatalog systems;
      sim::CampaignOptions options;
      options.inputs_per_app = 3;
      return build_dataset(sim::run_campaign(apps, systems, options));
    }();
    return ds;
  }
};

TEST_F(DatasetTest, RowCountMatchesCampaign) {
  EXPECT_EQ(dataset().num_rows(), 20u * 3u * 4u * 3u);
}

TEST_F(DatasetTest, HasAllColumns) {
  const auto& table = dataset().table();
  for (const auto& name : Dataset::feature_column_names()) {
    EXPECT_TRUE(table.has_column(name)) << name;
  }
  for (const auto& name : Dataset::target_column_names()) {
    EXPECT_TRUE(table.has_column(name)) << name;
  }
  for (const auto& name : Dataset::time_column_names()) {
    EXPECT_TRUE(table.has_column(name)) << name;
  }
}

TEST_F(DatasetTest, SourceSystemTargetIsOne) {
  // rpv entry for the row's own system is exactly 1 by construction.
  const auto& ds = dataset();
  const auto y = ds.targets();
  for (std::size_t r = 0; r < ds.num_rows(); ++r) {
    const auto source = arch::parse_system(ds.systems()[r]);
    ASSERT_TRUE(source.has_value());
    EXPECT_DOUBLE_EQ(y(r, static_cast<std::size_t>(*source)), 1.0);
  }
}

TEST_F(DatasetTest, TrueRpvMatchesTargets) {
  const auto& ds = dataset();
  const auto y = ds.targets();
  for (const std::size_t r : {std::size_t{0}, std::size_t{100}, std::size_t{500}}) {
    const Rpv rpv = ds.true_rpv(r);
    for (std::size_t k = 0; k < 4; ++k) EXPECT_DOUBLE_EQ(rpv[k], y(r, k));
  }
}

TEST_F(DatasetTest, FeatureMatrixShape) {
  const auto x = dataset().features();
  EXPECT_EQ(x.rows(), dataset().num_rows());
  EXPECT_EQ(x.cols(), FeaturePipeline::kNumFeatures);
}

TEST_F(DatasetTest, RowSelection) {
  const std::vector<std::size_t> rows = {1, 5, 9};
  const auto x = dataset().features(rows);
  EXPECT_EQ(x.rows(), 3u);
}

TEST_F(DatasetTest, TimesArePositive) {
  const auto& ds = dataset();
  for (std::size_t r = 0; r < ds.num_rows(); r += 37) {
    for (const SystemId id : arch::kAllSystems) EXPECT_GT(ds.time_on(r, id), 0.0);
  }
}

TEST(DatasetBuild, RejectsIncompleteGroups) {
  const workload::AppCatalog apps;
  const arch::SystemCatalog systems;
  sim::CampaignOptions options;
  options.inputs_per_app = 1;
  auto profiles = sim::run_campaign(apps, systems, options);
  profiles.pop_back();  // drop one run -> a group is incomplete
  EXPECT_THROW(build_dataset(profiles), ContractViolation);
}

// -------------------------------------------------------------- predictor ----

TEST_F(DatasetTest, PredictorTrainsAndPredicts) {
  CrossArchPredictor::Options options;
  options.gbt.n_rounds = 30;
  options.gbt.max_depth = 4;
  CrossArchPredictor predictor(options);
  predictor.train(dataset());
  ASSERT_TRUE(predictor.trained());

  // Predict for a freshly profiled run.
  const workload::AppCatalog apps;
  const arch::SystemCatalog systems;
  const sim::Profiler profiler(321);
  const auto& app = apps.get("CoMD");
  const auto inputs = workload::make_inputs(app, 1, 321);
  const auto profile = profiler.profile(app, inputs[0], workload::ScaleClass::kOneNode,
                                        systems.get("quartz"));
  const Rpv rpv = predictor.predict(profile);
  for (std::size_t k = 0; k < 4; ++k) EXPECT_GT(rpv[k], 0.0);
  // The source-system entry should be near 1.
  EXPECT_NEAR(rpv.time_ratio(SystemId::kQuartz), 1.0, 0.2);
}

TEST_F(DatasetTest, PredictorSaveLoadRoundTrips) {
  CrossArchPredictor::Options options;
  options.gbt.n_rounds = 20;
  options.gbt.max_depth = 3;
  CrossArchPredictor predictor(options);
  predictor.train(dataset());
  const std::string path = ::testing::TempDir() + "/predictor.mphpc";
  predictor.save(path);
  const CrossArchPredictor restored = CrossArchPredictor::load(path);
  const auto x = dataset().features();
  const auto a = predictor.predict(x);
  const auto b = restored.predict(x);
  for (std::size_t i = 0; i < a.flat().size(); ++i) {
    EXPECT_DOUBLE_EQ(a.flat()[i], b.flat()[i]);
  }
}

TEST(Predictor, UntrainedUseThrows) {
  const CrossArchPredictor predictor;
  EXPECT_THROW(predictor.predict(ml::Matrix(1, 21)), ContractViolation);
}

// -------------------------------------------------- predictor load failures ----

CrossArchPredictor small_predictor(const Dataset& dataset) {
  CrossArchPredictor::Options options;
  options.gbt.n_rounds = 20;
  options.gbt.max_depth = 3;
  CrossArchPredictor predictor(options);
  predictor.train(dataset);
  return predictor;
}

/// The serialized text of a small trained predictor.
std::string saved_predictor_text(const Dataset& dataset, const std::string& tag) {
  const std::string path = ::testing::TempDir() + "/predictor_" + tag + ".mphpc";
  small_predictor(dataset).save(path);
  std::ifstream in(path);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

std::string write_temp(const std::string& tag, const std::string& text) {
  const std::string path = ::testing::TempDir() + "/corrupt_" + tag + ".mphpc";
  std::ofstream out(path);
  out << text;
  return path;
}

TEST(Predictor, LoadMissingFileThrows) {
  EXPECT_THROW(CrossArchPredictor::load("/nonexistent/model.mphpc"),
               std::runtime_error);
}

TEST_F(DatasetTest, LoadRejectsFileWithoutSectionMarker) {
  const std::string text = saved_predictor_text(dataset(), "nomarker");
  const std::size_t marker = text.find("=== model ===");
  ASSERT_NE(marker, std::string::npos);
  // Everything before the marker is a valid pipeline but not a predictor.
  const std::string path = write_temp("nomarker", text.substr(0, marker));
  EXPECT_THROW(CrossArchPredictor::load(path), ParseError);
}

TEST_F(DatasetTest, LoadRejectsTruncatedPipelineSection) {
  const std::string text = saved_predictor_text(dataset(), "truncpipe");
  // Keep only the first pipeline line, then the marker and model: the
  // pipeline deserializer must reject the truncation.
  const std::size_t first_newline = text.find('\n');
  const std::size_t marker = text.find("=== model ===");
  ASSERT_NE(first_newline, std::string::npos);
  ASSERT_NE(marker, std::string::npos);
  ASSERT_LT(first_newline, marker);
  const std::string path = write_temp(
      "truncpipe", text.substr(0, first_newline + 1) + text.substr(marker));
  EXPECT_THROW(CrossArchPredictor::load(path), ParseError);
}

TEST_F(DatasetTest, LoadRejectsCorruptModelSection) {
  const std::string text = saved_predictor_text(dataset(), "badmodel");
  const std::size_t marker = text.find("=== model ===");
  ASSERT_NE(marker, std::string::npos);
  const std::string path =
      write_temp("badmodel", text.substr(0, marker) + "=== model ===\nnot a model\n");
  EXPECT_THROW(CrossArchPredictor::load(path), ParseError);
}

// ------------------------------------------------------- guarded predictor ----

sim::RunProfile sample_profile() {
  const workload::AppCatalog apps;
  const arch::SystemCatalog systems;
  const sim::Profiler profiler(321);
  const auto& app = apps.get("CoMD");
  const auto inputs = workload::make_inputs(app, 1, 321);
  return profiler.profile(app, inputs[0], workload::ScaleClass::kOneNode,
                          systems.get("quartz"));
}

TEST(GuardedPredictor, DefaultConstructedIsDegraded) {
  GuardedPredictor guarded;
  EXPECT_FALSE(guarded.healthy());
  const Rpv rpv = guarded.predict(sample_profile());
  for (std::size_t k = 0; k < arch::kNumSystems; ++k) EXPECT_DOUBLE_EQ(rpv[k], 1.0);
  EXPECT_EQ(guarded.fallback_count(), 1);
}

TEST(GuardedPredictor, LoadFailureDegradesInsteadOfThrowing) {
  GuardedPredictor guarded = GuardedPredictor::load("/nonexistent/model.mphpc", {});
  EXPECT_FALSE(guarded.healthy());
  EXPECT_FALSE(guarded.last_error().empty());
  const Rpv rpv = guarded.predict(sample_profile());
  for (std::size_t k = 0; k < arch::kNumSystems; ++k) EXPECT_DOUBLE_EQ(rpv[k], 1.0);
  EXPECT_EQ(guarded.fallback_count(), 1);
}

TEST_F(DatasetTest, GuardedPredictorLoadOfCorruptFileDegrades) {
  const std::string text = saved_predictor_text(dataset(), "guarded");
  const std::size_t marker = text.find("=== model ===");
  ASSERT_NE(marker, std::string::npos);
  const std::string path =
      write_temp("guarded", text.substr(0, marker) + "=== model ===\ngarbage\n");
  GuardedPredictor guarded = GuardedPredictor::load(path, {});
  EXPECT_FALSE(guarded.healthy());
  EXPECT_FALSE(guarded.last_error().empty());
  const Rpv rpv = guarded.predict(sample_profile());
  for (std::size_t k = 0; k < arch::kNumSystems; ++k) EXPECT_DOUBLE_EQ(rpv[k], 1.0);
}

TEST_F(DatasetTest, GuardedPredictorPassesThroughPlausiblePredictions) {
  GuardedPredictor guarded(small_predictor(dataset()), {});
  ASSERT_TRUE(guarded.healthy());
  const auto profile = sample_profile();
  const Rpv rpv = guarded.predict(profile);
  EXPECT_TRUE(is_plausible_rpv(rpv, guarded.bounds()));
  EXPECT_EQ(guarded.fallback_count(), 0);
  // Same numbers as the unguarded predictor.
  const Rpv direct = small_predictor(dataset()).predict(profile);
  for (std::size_t k = 0; k < arch::kNumSystems; ++k) {
    EXPECT_DOUBLE_EQ(rpv[k], direct[k]);
  }
}

TEST_F(DatasetTest, GuardedPredictorRejectsOutOfBoundsPredictions) {
  // Bounds so tight no real cross-architecture RPV can satisfy them: the
  // guard must fall back to the neutral vector rather than let the value
  // through.
  RpvGuardOptions bounds;
  bounds.min_ratio = 0.999;
  bounds.max_ratio = 1.001;
  GuardedPredictor guarded(small_predictor(dataset()), bounds);
  ASSERT_TRUE(guarded.healthy());
  const Rpv rpv = guarded.predict(sample_profile());
  for (std::size_t k = 0; k < arch::kNumSystems; ++k) EXPECT_DOUBLE_EQ(rpv[k], 1.0);
  EXPECT_EQ(guarded.fallback_count(), 1);
  EXPECT_FALSE(guarded.last_error().empty());
}

// --------------------------------------------------------- batch prediction ----

std::vector<sim::RunProfile> varied_profiles() {
  const workload::AppCatalog apps;
  const arch::SystemCatalog systems;
  const sim::Profiler profiler(77);
  std::vector<sim::RunProfile> out;
  for (const auto* app : {"CoMD", "AMG", "SWFFT", "XSBench"}) {
    const auto& sig = apps.get(app);
    const auto inputs = workload::make_inputs(sig, 2, 77);
    for (const auto* sys : {"quartz", "ruby", "lassen", "corona"}) {
      for (const auto& input : inputs) {
        out.push_back(profiler.profile(sig, input, workload::ScaleClass::kOneNode,
                                       systems.get(sys)));
      }
    }
  }
  return out;
}

TEST_F(DatasetTest, PredictRpvsMatchesPerProfilePredict) {
  const CrossArchPredictor predictor = small_predictor(dataset());
  const auto profiles = varied_profiles();
  ThreadPool pool(4);
  const std::vector<Rpv> batch = predictor.predict_rpvs(profiles, &pool);
  const std::vector<Rpv> serial = predictor.predict_rpvs(profiles);
  ASSERT_EQ(batch.size(), profiles.size());
  for (std::size_t i = 0; i < profiles.size(); ++i) {
    const Rpv one = predictor.predict(profiles[i]);
    for (std::size_t k = 0; k < arch::kNumSystems; ++k) {
      EXPECT_EQ(batch[i][k], one[k]) << "profile " << i;
      EXPECT_EQ(serial[i][k], one[k]) << "profile " << i;
    }
  }
}

TEST_F(DatasetTest, GuardedPredictRpvsMatchesPerProfilePredict) {
  GuardedPredictor batch_guard(small_predictor(dataset()), {});
  GuardedPredictor serial_guard(small_predictor(dataset()), {});
  const auto profiles = varied_profiles();
  const std::vector<Rpv> batch = batch_guard.predict_rpvs(profiles);
  ASSERT_EQ(batch.size(), profiles.size());
  for (std::size_t i = 0; i < profiles.size(); ++i) {
    const Rpv one = serial_guard.predict(profiles[i]);
    for (std::size_t k = 0; k < arch::kNumSystems; ++k) {
      EXPECT_EQ(batch[i][k], one[k]) << "profile " << i;
    }
  }
  EXPECT_EQ(batch_guard.fallback_count(), serial_guard.fallback_count());
}

TEST_F(DatasetTest, GuardedPredictRpvsCountsPerRowFallbacks) {
  // Bounds no real RPV satisfies: every row degrades independently to the
  // neutral vector and bumps the counter.
  RpvGuardOptions bounds;
  bounds.min_ratio = 0.999;
  bounds.max_ratio = 1.001;
  GuardedPredictor guarded(small_predictor(dataset()), bounds);
  ASSERT_TRUE(guarded.healthy());
  const auto profiles = varied_profiles();
  const std::vector<Rpv> batch = guarded.predict_rpvs(profiles);
  for (const Rpv& rpv : batch) {
    for (std::size_t k = 0; k < arch::kNumSystems; ++k) EXPECT_DOUBLE_EQ(rpv[k], 1.0);
  }
  EXPECT_EQ(guarded.fallback_count(),
            static_cast<long long>(profiles.size()));
}

TEST(GuardedPredictor, DegradedPredictRpvsIsAllNeutral) {
  GuardedPredictor guarded;
  const auto profiles = varied_profiles();
  const std::vector<Rpv> batch = guarded.predict_rpvs(profiles);
  ASSERT_EQ(batch.size(), profiles.size());
  for (const Rpv& rpv : batch) {
    for (std::size_t k = 0; k < arch::kNumSystems; ++k) EXPECT_DOUBLE_EQ(rpv[k], 1.0);
  }
  EXPECT_EQ(guarded.fallback_count(), static_cast<long long>(profiles.size()));
}

// ------------------------------------------- guarded predictor: hot swap ----

TEST_F(DatasetTest, GuardedPredictorSwapPreservesHealthAndSnapshots) {
  GuardedPredictor guarded(small_predictor(dataset()), {});
  const auto before = guarded.snapshot();
  ASSERT_NE(before, nullptr);
  guarded.swap_model(small_predictor(dataset()));
  const auto after = guarded.snapshot();
  ASSERT_NE(after, nullptr);
  EXPECT_NE(before.get(), after.get());  // a swap publishes a new object
  EXPECT_TRUE(guarded.healthy());
  // The old snapshot stays valid for readers that captured it pre-swap.
  EXPECT_TRUE(before->trained());
  (void)before->predict(sample_profile());
}

TEST_F(DatasetTest, GuardedPredictorExactFallbacksUnderConcurrentHotSwap) {
  // Several threads batch-predict in a loop while another thread keeps
  // hot-swapping the model. With bounds no real RPV can satisfy, EVERY
  // row must fall back; the counter being exactly threads*calls*rows
  // proves no row was lost or double-counted across any swap.
  constexpr int kThreads = 4;
  constexpr int kCalls = 20;
  const auto profiles = varied_profiles();
  RpvGuardOptions impossible;
  impossible.min_ratio = 1e-9;
  impossible.max_ratio = 2e-9;
  GuardedPredictor guarded(small_predictor(dataset()), impossible);
  const CrossArchPredictor donor = small_predictor(dataset());

  std::atomic<bool> stop{false};
  std::atomic<long long> non_neutral{0};
  std::atomic<long long> rows_not_flagged{0};
  std::thread swapper([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      guarded.swap_model(CrossArchPredictor(donor));
    }
  });
  std::vector<std::thread> readers;
  readers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    readers.emplace_back([&] {
      for (int c = 0; c < kCalls; ++c) {
        std::vector<std::uint8_t> fallback;
        const std::vector<Rpv> batch =
            guarded.predict_rpvs(profiles, nullptr, &fallback);
        for (std::size_t i = 0; i < batch.size(); ++i) {
          if (fallback[i] == 0) rows_not_flagged++;
          for (std::size_t k = 0; k < arch::kNumSystems; ++k) {
            if (batch[i][k] != 1.0) non_neutral++;
          }
        }
      }
    });
  }
  for (std::thread& r : readers) r.join();
  stop.store(true);
  swapper.join();

  EXPECT_EQ(rows_not_flagged.load(), 0);
  EXPECT_EQ(non_neutral.load(), 0);
  EXPECT_EQ(guarded.fallback_count(),
            static_cast<long long>(kThreads) * kCalls *
                static_cast<long long>(profiles.size()));
  EXPECT_TRUE(guarded.healthy());  // plausibility fallback never degrades
}

TEST_F(DatasetTest, GuardedPredictorZeroFallbacksUnderConcurrentHotSwap) {
  // Same race, generous bounds: no row may spuriously fall back even when
  // predictions straddle a swap.
  constexpr int kThreads = 4;
  constexpr int kCalls = 20;
  const auto profiles = varied_profiles();
  GuardedPredictor guarded(small_predictor(dataset()), {});
  const CrossArchPredictor donor = small_predictor(dataset());

  std::atomic<bool> stop{false};
  std::atomic<long long> flagged{0};
  std::thread swapper([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      guarded.swap_model(CrossArchPredictor(donor));
    }
  });
  std::vector<std::thread> readers;
  readers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    readers.emplace_back([&] {
      for (int c = 0; c < kCalls; ++c) {
        std::vector<std::uint8_t> fallback;
        (void)guarded.predict_rpvs(profiles, nullptr, &fallback);
        for (const std::uint8_t f : fallback) {
          if (f != 0) flagged++;
        }
      }
    });
  }
  for (std::thread& r : readers) r.join();
  stop.store(true);
  swapper.join();

  EXPECT_EQ(flagged.load(), 0);
  EXPECT_EQ(guarded.fallback_count(), 0);
}

TEST_F(DatasetTest, GuardedPredictorForcedDegradedOverridesHealthyModel) {
  GuardedPredictor guarded(small_predictor(dataset()), {});
  ASSERT_TRUE(guarded.healthy());
  guarded.set_forced_degraded(true, "drift tripped in a test");
  EXPECT_FALSE(guarded.healthy());
  EXPECT_TRUE(guarded.forced_degraded());
  const Rpv rpv = guarded.predict(sample_profile());
  for (std::size_t k = 0; k < arch::kNumSystems; ++k) EXPECT_DOUBLE_EQ(rpv[k], 1.0);
  EXPECT_NE(guarded.last_error().find("drift tripped"), std::string::npos);
  guarded.set_forced_degraded(false);
  EXPECT_TRUE(guarded.healthy());
  EXPECT_EQ(guarded.predict(sample_profile()).values(),
            small_predictor(dataset()).predict(sample_profile()).values());
}

// --------------------------------------------------------- model selection ----

TEST(ModelSelection, FactoryProducesAllKinds) {
  for (const ModelKind kind : kAllModelKinds) {
    const auto model = make_model(kind);
    ASSERT_NE(model, nullptr);
    EXPECT_FALSE(model->fitted());
  }
  EXPECT_EQ(make_model(ModelKind::kXgboost)->name(), "xgboost");
  EXPECT_EQ(make_model(ModelKind::kForest)->name(), "decision forest");
}

TEST(ModelSelection, ToStringNames) {
  EXPECT_EQ(to_string(ModelKind::kMean), "mean");
  EXPECT_EQ(to_string(ModelKind::kLinear), "linear");
}

TEST_F(DatasetTest, CompareModelsRanksXgboostAboveMean) {
  const auto x = dataset().features();
  const auto y = dataset().targets();
  ComparisonOptions options;
  options.run_cv = false;
  const std::array<ModelKind, 2> kinds = {ModelKind::kMean, ModelKind::kXgboost};
  // Use a light XGB config through the factory defaults; the full-size
  // comparison lives in the fig2 bench.
  const auto results = compare_models(x, y, kinds, options);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_LT(results[1].test.mae, results[0].test.mae);
  EXPECT_GT(results[1].test.sos, results[0].test.sos);
}

TEST_F(DatasetTest, CrossValidationRuns) {
  const auto x = dataset().features();
  const auto y = dataset().targets();
  std::vector<std::size_t> rows;
  for (std::size_t r = 0; r < 200; ++r) rows.push_back(r);
  const double cv = cross_validated_mae(ModelKind::kLinear, x, y, rows, 5, 1);
  EXPECT_GT(cv, 0.0);
}

TEST(Evaluate, ComputesAllMetrics) {
  const ml::Matrix truth(2, 2, {1, 2, 3, 4});
  const ml::Matrix pred(2, 2, {1, 2, 3, 4});
  const EvalMetrics m = evaluate(truth, pred);
  EXPECT_EQ(m.mae, 0.0);
  EXPECT_EQ(m.rmse, 0.0);
  EXPECT_EQ(m.sos, 1.0);
  EXPECT_EQ(m.r2, 1.0);
}

// -------------------------------------------------------------- importance ----

TEST(Importance, ReportSortedDescending) {
  // A fitted GBT on synthetic data exposes importances.
  ml::Matrix x(100, 3);
  ml::Matrix y(100, 1);
  Rng rng(5);
  for (std::size_t r = 0; r < 100; ++r) {
    x(r, 0) = rng.uniform();
    x(r, 1) = rng.uniform();
    x(r, 2) = rng.uniform();
    y(r, 0) = 5.0 * x(r, 0);
  }
  ml::GbtOptions options;
  options.n_rounds = 20;
  options.max_depth = 3;
  ml::GbtRegressor model(options);
  model.fit(x, y);
  const std::vector<std::string> names = {"relevant", "noise1", "noise2"};
  const auto report = importance_report(model, names);
  ASSERT_EQ(report.size(), 3u);
  EXPECT_EQ(report[0].feature, "relevant");
  for (std::size_t i = 1; i < report.size(); ++i) {
    EXPECT_GE(report[i - 1].importance, report[i].importance);
  }
  const auto top = top_k_features(report, 2);
  EXPECT_EQ(top[0], "relevant");
  const auto idx = top_k_feature_indices(report, names, 1);
  EXPECT_EQ(idx, (std::vector<std::size_t>{0}));
}

TEST(Importance, ModelWithoutImportancesThrows) {
  ml::MeanRegressor model;
  ml::Matrix x(10, 2);
  ml::Matrix y(10, 1);
  for (std::size_t r = 0; r < 10; ++r) y(r, 0) = 1.0;
  model.fit(x, y);
  const std::vector<std::string> names = {"a", "b"};
  EXPECT_THROW(importance_report(model, names), ContractViolation);
}

}  // namespace
}  // namespace mphpc::core
