// Tests for src/sched: assigners, the FCFS+EASY scheduler, metrics.
#include <gtest/gtest.h>

#include "arch/system_catalog.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "sched/assigners.hpp"
#include "sched/easy_scheduler.hpp"
#include "sched/machine.hpp"

namespace mphpc::sched {
namespace {

using arch::SystemId;

Job make_job(int id, double q, double r, double l, double c, int nodes = 1,
             bool gpu = false) {
  Job job;
  job.id = id;
  job.app = "TestApp";
  job.gpu_capable = gpu;
  job.nodes_required = nodes;
  job.runtime = {q, r, l, c};
  job.predicted = core::Rpv::relative_to(job.runtime, SystemId::kQuartz);
  return job;
}

std::vector<Machine> tiny_cluster(int q = 2, int r = 2, int l = 2, int c = 2) {
  return {{SystemId::kQuartz, q},
          {SystemId::kRuby, r},
          {SystemId::kLassen, l},
          {SystemId::kCorona, c}};
}

// ---------------------------------------------------------------- cluster ----

TEST(Machine, DefaultClusterMatchesSystemCatalog) {
  const arch::SystemCatalog catalog;
  const auto machines = default_cluster(catalog);
  ASSERT_EQ(machines.size(), 4u);
  for (const auto& m : machines) {
    EXPECT_EQ(m.total_nodes, catalog.get(m.id).nodes);
  }
}

TEST(ClusterView, ReportsOccupancy) {
  const auto machines = tiny_cluster();
  std::array<int, 4> free = {2, 0, 1, 2};
  const ClusterView view(machines, free);
  EXPECT_EQ(view.free_nodes(SystemId::kQuartz), 2);
  EXPECT_TRUE(view.is_full(SystemId::kRuby, 1));
  EXPECT_FALSE(view.is_full(SystemId::kLassen, 1));
  EXPECT_TRUE(view.is_full(SystemId::kLassen, 2));
  EXPECT_EQ(view.total_nodes(SystemId::kCorona), 2);
}

// --------------------------------------------------------------- assigners ----

TEST(RoundRobinAssigner, CyclesThroughMachines) {
  const auto machines = tiny_cluster();
  std::array<int, 4> free = {2, 2, 2, 2};
  const ClusterView view(machines, free);
  RoundRobinAssigner assigner;
  const Job job = make_job(0, 1, 1, 1, 1);
  EXPECT_EQ(assigner.assign(job, 0, view), SystemId::kQuartz);
  EXPECT_EQ(assigner.assign(job, 1, view), SystemId::kRuby);
  EXPECT_EQ(assigner.assign(job, 2, view), SystemId::kLassen);
  EXPECT_EQ(assigner.assign(job, 3, view), SystemId::kCorona);
  EXPECT_EQ(assigner.assign(job, 4, view), SystemId::kQuartz);
}

TEST(RandomAssigner, CoversAllMachinesDeterministically) {
  const auto machines = tiny_cluster();
  std::array<int, 4> free = {2, 2, 2, 2};
  const ClusterView view(machines, free);
  RandomAssigner a(7);
  RandomAssigner b(7);
  std::array<int, 4> hits{};
  const Job job = make_job(0, 1, 1, 1, 1);
  for (int i = 0; i < 400; ++i) {
    const SystemId ma = a.assign(job, 0, view);
    EXPECT_EQ(ma, b.assign(job, 0, view));  // same seed, same stream
    hits[static_cast<std::size_t>(ma)]++;
  }
  for (const int h : hits) EXPECT_GT(h, 50);
}

TEST(UserRoundRobinAssigner, SeparatesGpuAndCpuJobs) {
  const auto machines = tiny_cluster();
  std::array<int, 4> free = {2, 2, 2, 2};
  const ClusterView view(machines, free);
  UserRoundRobinAssigner assigner;
  const Job gpu_job = make_job(0, 1, 1, 1, 1, 1, /*gpu=*/true);
  const Job cpu_job = make_job(1, 1, 1, 1, 1, 1, /*gpu=*/false);
  EXPECT_EQ(assigner.assign(gpu_job, 0, view), SystemId::kLassen);
  EXPECT_EQ(assigner.assign(gpu_job, 1, view), SystemId::kCorona);
  EXPECT_EQ(assigner.assign(gpu_job, 2, view), SystemId::kLassen);
  EXPECT_EQ(assigner.assign(cpu_job, 3, view), SystemId::kQuartz);
  EXPECT_EQ(assigner.assign(cpu_job, 4, view), SystemId::kRuby);
}

TEST(ModelBasedAssigner, PicksPredictedFastest) {
  const auto machines = tiny_cluster();
  std::array<int, 4> free = {2, 2, 2, 2};
  const ClusterView view(machines, free);
  ModelBasedAssigner assigner;
  const Job job = make_job(0, 10.0, 5.0, 2.0, 8.0);  // lassen fastest
  EXPECT_EQ(assigner.assign(job, 0, view), SystemId::kLassen);
}

TEST(ModelBasedAssigner, FallsBackWhenFull) {
  const auto machines = tiny_cluster();
  std::array<int, 4> free = {2, 2, 0, 2};  // lassen full
  const ClusterView view(machines, free);
  ModelBasedAssigner assigner;
  const Job job = make_job(0, 10.0, 5.0, 2.0, 8.0);  // lassen > ruby > corona > quartz
  EXPECT_EQ(assigner.assign(job, 0, view), SystemId::kRuby);
}

TEST(ModelBasedAssigner, AllFullReturnsFastest) {
  const auto machines = tiny_cluster();
  std::array<int, 4> free = {0, 0, 0, 0};
  const ClusterView view(machines, free);
  ModelBasedAssigner assigner;
  const Job job = make_job(0, 10.0, 5.0, 2.0, 8.0);
  EXPECT_EQ(assigner.assign(job, 0, view), SystemId::kLassen);
}

TEST(OracleAssigner, UsesTrueRuntimes) {
  const auto machines = tiny_cluster();
  std::array<int, 4> free = {2, 2, 2, 2};
  const ClusterView view(machines, free);
  OracleAssigner assigner;
  Job job = make_job(0, 1.0, 5.0, 2.0, 8.0);
  // Mislead the prediction; the oracle must ignore it.
  job.predicted = core::Rpv({5.0, 0.1, 2.0, 3.0});
  EXPECT_EQ(assigner.assign(job, 0, view), SystemId::kQuartz);
}

// --------------------------------------------------------------- scheduler ----

TEST(EasyScheduler, SingleJobRunsImmediately) {
  const auto machines = tiny_cluster();
  RoundRobinAssigner assigner;
  const std::vector<Job> jobs = {make_job(0, 10, 10, 10, 10)};
  const auto result = simulate(jobs, machines, assigner);
  EXPECT_DOUBLE_EQ(result.makespan_s, 10.0);
  EXPECT_DOUBLE_EQ(result.outcomes[0].start_s, 0.0);
  EXPECT_EQ(result.outcomes[0].machine, SystemId::kQuartz);
}

TEST(EasyScheduler, SerializesWhenMachineSaturated) {
  // One machine with one node; all jobs forced onto quartz.
  const std::vector<Machine> machines = {{SystemId::kQuartz, 1},
                                         {SystemId::kRuby, 1},
                                         {SystemId::kLassen, 1},
                                         {SystemId::kCorona, 1}};
  class QuartzOnly final : public MachineAssigner {
   public:
    arch::SystemId assign(const Job&, std::size_t, const ClusterView&) override {
      return SystemId::kQuartz;
    }
    std::string name() const override { return "quartz-only"; }
  } assigner;
  const std::vector<Job> jobs = {make_job(0, 5, 5, 5, 5), make_job(1, 7, 7, 7, 7),
                                 make_job(2, 3, 3, 3, 3)};
  const auto result = simulate(jobs, machines, assigner);
  EXPECT_DOUBLE_EQ(result.makespan_s, 15.0);  // 5 + 7 + 3 in order
  EXPECT_DOUBLE_EQ(result.outcomes[1].start_s, 5.0);
  EXPECT_DOUBLE_EQ(result.outcomes[2].start_s, 12.0);
}

TEST(EasyScheduler, BackfillsShortJobBehindBlockedHead) {
  // quartz has 2 nodes. Job0 (2 nodes, runs 10) occupies it. Job1 needs 2
  // nodes -> blocked, reserved at t=10. Job2 (1 node, runs 5) fits in the
  // spare-free window? No free nodes -> cannot. Instead: Job0 uses 1 node,
  // leaving 1 free; Job1 needs 2 (blocked); Job2 needs 1 and runs 5 <= 10.
  const std::vector<Machine> machines = {{SystemId::kQuartz, 2},
                                         {SystemId::kRuby, 2},
                                         {SystemId::kLassen, 2},
                                         {SystemId::kCorona, 2}};
  class QuartzOnly final : public MachineAssigner {
   public:
    arch::SystemId assign(const Job&, std::size_t, const ClusterView&) override {
      return SystemId::kQuartz;
    }
    std::string name() const override { return "quartz-only"; }
  } assigner;
  std::vector<Job> jobs = {make_job(0, 10, 10, 10, 10, 1),
                           make_job(1, 4, 4, 4, 4, 2),
                           make_job(2, 5, 5, 5, 5, 1)};
  const auto result = simulate(jobs, machines, assigner);
  EXPECT_DOUBLE_EQ(result.outcomes[0].start_s, 0.0);
  // Head job 1 is blocked until job 0 finishes at t=10.
  EXPECT_DOUBLE_EQ(result.outcomes[1].start_s, 10.0);
  // Job 2 backfills at t=0 (ends at 5 <= shadow time 10, fits in 1 node).
  EXPECT_DOUBLE_EQ(result.outcomes[2].start_s, 0.0);
  EXPECT_DOUBLE_EQ(result.makespan_s, 14.0);
}

TEST(EasyScheduler, BackfillDoesNotDelayReservation) {
  // Same setup, but the backfill candidate runs 20 s: starting it would
  // push job 1 past its reservation, so it must NOT backfill.
  const std::vector<Machine> machines = {{SystemId::kQuartz, 2},
                                         {SystemId::kRuby, 2},
                                         {SystemId::kLassen, 2},
                                         {SystemId::kCorona, 2}};
  class QuartzOnly final : public MachineAssigner {
   public:
    arch::SystemId assign(const Job&, std::size_t, const ClusterView&) override {
      return SystemId::kQuartz;
    }
    std::string name() const override { return "quartz-only"; }
  } assigner;
  std::vector<Job> jobs = {make_job(0, 10, 10, 10, 10, 1),
                           make_job(1, 4, 4, 4, 4, 2),
                           make_job(2, 20, 20, 20, 20, 1)};
  const auto result = simulate(jobs, machines, assigner);
  EXPECT_DOUBLE_EQ(result.outcomes[1].start_s, 10.0);
  EXPECT_GE(result.outcomes[2].start_s, 10.0);  // had to wait
}

TEST(EasyScheduler, CrossMachineBackfillAllowed) {
  // Head blocked on quartz; a later job assigned to ruby starts right away.
  const std::vector<Machine> machines = {{SystemId::kQuartz, 1},
                                         {SystemId::kRuby, 1},
                                         {SystemId::kLassen, 1},
                                         {SystemId::kCorona, 1}};
  class Alternate final : public MachineAssigner {
   public:
    arch::SystemId assign(const Job& job, std::size_t, const ClusterView&) override {
      return job.id == 2 ? SystemId::kRuby : SystemId::kQuartz;
    }
    std::string name() const override { return "alternate"; }
  } assigner;
  std::vector<Job> jobs = {make_job(0, 10, 10, 10, 10), make_job(1, 4, 4, 4, 4),
                           make_job(2, 6, 6, 6, 6)};
  const auto result = simulate(jobs, machines, assigner);
  EXPECT_DOUBLE_EQ(result.outcomes[2].start_s, 0.0);
  EXPECT_EQ(result.outcomes[2].machine, SystemId::kRuby);
}

TEST(EasyScheduler, AllJobsComplete) {
  const auto machines = tiny_cluster(3, 3, 3, 3);
  RoundRobinAssigner assigner;
  std::vector<Job> jobs;
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    jobs.push_back(make_job(i, rng.uniform(1, 20), rng.uniform(1, 20),
                            rng.uniform(1, 20), rng.uniform(1, 20),
                            rng.bernoulli(0.3) ? 2 : 1));
  }
  const auto result = simulate(jobs, machines, assigner);
  EXPECT_EQ(result.outcomes.size(), jobs.size());
  for (const auto& o : result.outcomes) {
    EXPECT_GE(o.start_s, 0.0);
    EXPECT_GT(o.end_s, o.start_s);
  }
  EXPECT_GT(result.makespan_s, 0.0);
}

TEST(EasyScheduler, NodeCapacityNeverExceeded) {
  const auto machines = tiny_cluster(2, 2, 2, 2);
  RoundRobinAssigner assigner;
  std::vector<Job> jobs;
  Rng rng(6);
  for (int i = 0; i < 100; ++i) {
    jobs.push_back(make_job(i, rng.uniform(1, 10), rng.uniform(1, 10),
                            rng.uniform(1, 10), rng.uniform(1, 10),
                            rng.bernoulli(0.4) ? 2 : 1));
  }
  const auto result = simulate(jobs, machines, assigner);
  // Sweep events per machine and verify concurrent node usage <= capacity.
  for (const auto& machine : machines) {
    std::vector<std::pair<double, int>> events;
    for (std::size_t j = 0; j < jobs.size(); ++j) {
      if (result.outcomes[j].machine != machine.id) continue;
      events.emplace_back(result.outcomes[j].start_s, jobs[j].nodes_required);
      events.emplace_back(result.outcomes[j].end_s, -jobs[j].nodes_required);
    }
    std::sort(events.begin(), events.end(),
              [](const auto& a, const auto& b) {
                // Releases before acquisitions at the same instant.
                return a.first != b.first ? a.first < b.first : a.second < b.second;
              });
    int in_use = 0;
    for (const auto& [t, delta] : events) {
      in_use += delta;
      EXPECT_LE(in_use, machine.total_nodes);
      EXPECT_GE(in_use, 0);
    }
  }
}

TEST(EasyScheduler, Deterministic) {
  const auto machines = tiny_cluster(3, 3, 3, 3);
  std::vector<Job> jobs;
  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    jobs.push_back(make_job(i, rng.uniform(1, 9), rng.uniform(1, 9),
                            rng.uniform(1, 9), rng.uniform(1, 9)));
  }
  RandomAssigner a1(3);
  RandomAssigner a2(3);
  const auto r1 = simulate(jobs, machines, a1);
  const auto r2 = simulate(jobs, machines, a2);
  EXPECT_EQ(r1.makespan_s, r2.makespan_s);
  EXPECT_EQ(r1.avg_bounded_slowdown, r2.avg_bounded_slowdown);
}

TEST(EasyScheduler, OracleBeatsWorstCasePlacement) {
  // Jobs are 10x faster on lassen; an informed assigner must beat one that
  // always picks quartz.
  const auto machines = tiny_cluster(2, 2, 2, 2);
  std::vector<Job> jobs;
  for (int i = 0; i < 40; ++i) jobs.push_back(make_job(i, 20, 18, 2, 16));
  OracleAssigner oracle;
  const auto fast = simulate(jobs, machines, oracle);
  RoundRobinAssigner rr;
  const auto slow = simulate(jobs, machines, rr);
  EXPECT_LT(fast.makespan_s, slow.makespan_s);
}

TEST(BoundedSlowdown, ComputesBoundedRatio) {
  std::vector<JobOutcome> outcomes;
  // wait 10, run 10 -> slowdown 2.
  outcomes.push_back({SystemId::kQuartz, 10.0, 20.0});
  EXPECT_DOUBLE_EQ(average_bounded_slowdown(outcomes), 2.0);
  // Very short job: bound by tau=10 -> (90 + 1)/10 = 9.1.
  outcomes.clear();
  outcomes.push_back({SystemId::kQuartz, 90.0, 91.0});
  EXPECT_DOUBLE_EQ(average_bounded_slowdown(outcomes), 9.1);
}

TEST(BoundedSlowdown, NeverBelowOne) {
  std::vector<JobOutcome> outcomes;
  outcomes.push_back({SystemId::kQuartz, 0.0, 1.0});  // no wait, short run
  EXPECT_DOUBLE_EQ(average_bounded_slowdown(outcomes), 1.0);
}

TEST(BoundedSlowdown, RejectsBadTau) {
  EXPECT_THROW(average_bounded_slowdown({}, 0.0), mphpc::ContractViolation);
}

}  // namespace
}  // namespace mphpc::sched
