// Tests for src/sched: assigners, the FCFS+EASY scheduler, fault
// injection, metrics.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <limits>
#include <set>

#include "arch/system_catalog.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "sched/assigners.hpp"
#include "sched/checkpoint.hpp"
#include "sched/easy_scheduler.hpp"
#include "sched/event_queue.hpp"
#include "sched/faults.hpp"
#include "sched/machine.hpp"

namespace mphpc::sched {
namespace {

using arch::SystemId;

Job make_job(int id, double q, double r, double l, double c, int nodes = 1,
             bool gpu = false) {
  Job job;
  job.id = id;
  job.app = "TestApp";
  job.gpu_capable = gpu;
  job.nodes_required = nodes;
  job.runtime = {q, r, l, c};
  job.predicted = core::Rpv::relative_to(job.runtime, SystemId::kQuartz);
  return job;
}

std::vector<Machine> tiny_cluster(int q = 2, int r = 2, int l = 2, int c = 2) {
  return {{SystemId::kQuartz, q},
          {SystemId::kRuby, r},
          {SystemId::kLassen, l},
          {SystemId::kCorona, c}};
}

// ---------------------------------------------------------------- cluster ----

TEST(Machine, DefaultClusterMatchesSystemCatalog) {
  const arch::SystemCatalog catalog;
  const auto machines = default_cluster(catalog);
  ASSERT_EQ(machines.size(), 4u);
  for (const auto& m : machines) {
    EXPECT_EQ(m.total_nodes, catalog.get(m.id).nodes);
  }
}

TEST(ClusterView, ReportsOccupancy) {
  const auto machines = tiny_cluster();
  std::array<int, 4> free = {2, 0, 1, 2};
  const ClusterView view(machines, free);
  EXPECT_EQ(view.free_nodes(SystemId::kQuartz), 2);
  EXPECT_TRUE(view.is_full(SystemId::kRuby, 1));
  EXPECT_FALSE(view.is_full(SystemId::kLassen, 1));
  EXPECT_TRUE(view.is_full(SystemId::kLassen, 2));
  EXPECT_EQ(view.total_nodes(SystemId::kCorona), 2);
}

// --------------------------------------------------------------- assigners ----

TEST(RoundRobinAssigner, CyclesThroughMachines) {
  const auto machines = tiny_cluster();
  std::array<int, 4> free = {2, 2, 2, 2};
  const ClusterView view(machines, free);
  RoundRobinAssigner assigner;
  const Job job = make_job(0, 1, 1, 1, 1);
  EXPECT_EQ(assigner.assign(job, 0, view), SystemId::kQuartz);
  EXPECT_EQ(assigner.assign(job, 1, view), SystemId::kRuby);
  EXPECT_EQ(assigner.assign(job, 2, view), SystemId::kLassen);
  EXPECT_EQ(assigner.assign(job, 3, view), SystemId::kCorona);
  EXPECT_EQ(assigner.assign(job, 4, view), SystemId::kQuartz);
}

TEST(RandomAssigner, CoversAllMachinesDeterministically) {
  const auto machines = tiny_cluster();
  std::array<int, 4> free = {2, 2, 2, 2};
  const ClusterView view(machines, free);
  RandomAssigner a(7);
  RandomAssigner b(7);
  std::array<int, 4> hits{};
  const Job job = make_job(0, 1, 1, 1, 1);
  for (int i = 0; i < 400; ++i) {
    const SystemId ma = a.assign(job, 0, view);
    EXPECT_EQ(ma, b.assign(job, 0, view));  // same seed, same stream
    hits[static_cast<std::size_t>(ma)]++;
  }
  for (const int h : hits) EXPECT_GT(h, 50);
}

TEST(UserRoundRobinAssigner, SeparatesGpuAndCpuJobs) {
  const auto machines = tiny_cluster();
  std::array<int, 4> free = {2, 2, 2, 2};
  const ClusterView view(machines, free);
  UserRoundRobinAssigner assigner;
  const Job gpu_job = make_job(0, 1, 1, 1, 1, 1, /*gpu=*/true);
  const Job cpu_job = make_job(1, 1, 1, 1, 1, 1, /*gpu=*/false);
  EXPECT_EQ(assigner.assign(gpu_job, 0, view), SystemId::kLassen);
  EXPECT_EQ(assigner.assign(gpu_job, 1, view), SystemId::kCorona);
  EXPECT_EQ(assigner.assign(gpu_job, 2, view), SystemId::kLassen);
  EXPECT_EQ(assigner.assign(cpu_job, 3, view), SystemId::kQuartz);
  EXPECT_EQ(assigner.assign(cpu_job, 4, view), SystemId::kRuby);
}

TEST(ModelBasedAssigner, PicksPredictedFastest) {
  const auto machines = tiny_cluster();
  std::array<int, 4> free = {2, 2, 2, 2};
  const ClusterView view(machines, free);
  ModelBasedAssigner assigner;
  const Job job = make_job(0, 10.0, 5.0, 2.0, 8.0);  // lassen fastest
  EXPECT_EQ(assigner.assign(job, 0, view), SystemId::kLassen);
}

TEST(ModelBasedAssigner, FallsBackWhenFull) {
  const auto machines = tiny_cluster();
  std::array<int, 4> free = {2, 2, 0, 2};  // lassen full
  const ClusterView view(machines, free);
  ModelBasedAssigner assigner;
  const Job job = make_job(0, 10.0, 5.0, 2.0, 8.0);  // lassen > ruby > corona > quartz
  EXPECT_EQ(assigner.assign(job, 0, view), SystemId::kRuby);
}

TEST(ModelBasedAssigner, AllFullReturnsFastest) {
  const auto machines = tiny_cluster();
  std::array<int, 4> free = {0, 0, 0, 0};
  const ClusterView view(machines, free);
  ModelBasedAssigner assigner;
  const Job job = make_job(0, 10.0, 5.0, 2.0, 8.0);
  EXPECT_EQ(assigner.assign(job, 0, view), SystemId::kLassen);
}

TEST(OracleAssigner, UsesTrueRuntimes) {
  const auto machines = tiny_cluster();
  std::array<int, 4> free = {2, 2, 2, 2};
  const ClusterView view(machines, free);
  OracleAssigner assigner;
  Job job = make_job(0, 1.0, 5.0, 2.0, 8.0);
  // Mislead the prediction; the oracle must ignore it.
  job.predicted = core::Rpv({5.0, 0.1, 2.0, 3.0});
  EXPECT_EQ(assigner.assign(job, 0, view), SystemId::kQuartz);
}

// --------------------------------------------------------------- scheduler ----

TEST(EasyScheduler, SingleJobRunsImmediately) {
  const auto machines = tiny_cluster();
  RoundRobinAssigner assigner;
  const std::vector<Job> jobs = {make_job(0, 10, 10, 10, 10)};
  const auto result = simulate(jobs, machines, assigner);
  EXPECT_DOUBLE_EQ(result.makespan_s, 10.0);
  EXPECT_DOUBLE_EQ(result.outcomes[0].start_s, 0.0);
  EXPECT_EQ(result.outcomes[0].machine, SystemId::kQuartz);
}

TEST(EasyScheduler, SerializesWhenMachineSaturated) {
  // One machine with one node; all jobs forced onto quartz.
  const std::vector<Machine> machines = {{SystemId::kQuartz, 1},
                                         {SystemId::kRuby, 1},
                                         {SystemId::kLassen, 1},
                                         {SystemId::kCorona, 1}};
  class QuartzOnly final : public MachineAssigner {
   public:
    arch::SystemId assign(const Job&, std::size_t, const ClusterView&) override {
      return SystemId::kQuartz;
    }
    std::string name() const override { return "quartz-only"; }
  } assigner;
  const std::vector<Job> jobs = {make_job(0, 5, 5, 5, 5), make_job(1, 7, 7, 7, 7),
                                 make_job(2, 3, 3, 3, 3)};
  const auto result = simulate(jobs, machines, assigner);
  EXPECT_DOUBLE_EQ(result.makespan_s, 15.0);  // 5 + 7 + 3 in order
  EXPECT_DOUBLE_EQ(result.outcomes[1].start_s, 5.0);
  EXPECT_DOUBLE_EQ(result.outcomes[2].start_s, 12.0);
}

TEST(EasyScheduler, BackfillsShortJobBehindBlockedHead) {
  // quartz has 2 nodes. Job0 (2 nodes, runs 10) occupies it. Job1 needs 2
  // nodes -> blocked, reserved at t=10. Job2 (1 node, runs 5) fits in the
  // spare-free window? No free nodes -> cannot. Instead: Job0 uses 1 node,
  // leaving 1 free; Job1 needs 2 (blocked); Job2 needs 1 and runs 5 <= 10.
  const std::vector<Machine> machines = {{SystemId::kQuartz, 2},
                                         {SystemId::kRuby, 2},
                                         {SystemId::kLassen, 2},
                                         {SystemId::kCorona, 2}};
  class QuartzOnly final : public MachineAssigner {
   public:
    arch::SystemId assign(const Job&, std::size_t, const ClusterView&) override {
      return SystemId::kQuartz;
    }
    std::string name() const override { return "quartz-only"; }
  } assigner;
  std::vector<Job> jobs = {make_job(0, 10, 10, 10, 10, 1),
                           make_job(1, 4, 4, 4, 4, 2),
                           make_job(2, 5, 5, 5, 5, 1)};
  const auto result = simulate(jobs, machines, assigner);
  EXPECT_DOUBLE_EQ(result.outcomes[0].start_s, 0.0);
  // Head job 1 is blocked until job 0 finishes at t=10.
  EXPECT_DOUBLE_EQ(result.outcomes[1].start_s, 10.0);
  // Job 2 backfills at t=0 (ends at 5 <= shadow time 10, fits in 1 node).
  EXPECT_DOUBLE_EQ(result.outcomes[2].start_s, 0.0);
  EXPECT_DOUBLE_EQ(result.makespan_s, 14.0);
}

TEST(EasyScheduler, BackfillDoesNotDelayReservation) {
  // Same setup, but the backfill candidate runs 20 s: starting it would
  // push job 1 past its reservation, so it must NOT backfill.
  const std::vector<Machine> machines = {{SystemId::kQuartz, 2},
                                         {SystemId::kRuby, 2},
                                         {SystemId::kLassen, 2},
                                         {SystemId::kCorona, 2}};
  class QuartzOnly final : public MachineAssigner {
   public:
    arch::SystemId assign(const Job&, std::size_t, const ClusterView&) override {
      return SystemId::kQuartz;
    }
    std::string name() const override { return "quartz-only"; }
  } assigner;
  std::vector<Job> jobs = {make_job(0, 10, 10, 10, 10, 1),
                           make_job(1, 4, 4, 4, 4, 2),
                           make_job(2, 20, 20, 20, 20, 1)};
  const auto result = simulate(jobs, machines, assigner);
  EXPECT_DOUBLE_EQ(result.outcomes[1].start_s, 10.0);
  EXPECT_GE(result.outcomes[2].start_s, 10.0);  // had to wait
}

TEST(EasyScheduler, CrossMachineBackfillAllowed) {
  // Head blocked on quartz; a later job assigned to ruby starts right away.
  const std::vector<Machine> machines = {{SystemId::kQuartz, 1},
                                         {SystemId::kRuby, 1},
                                         {SystemId::kLassen, 1},
                                         {SystemId::kCorona, 1}};
  class Alternate final : public MachineAssigner {
   public:
    arch::SystemId assign(const Job& job, std::size_t, const ClusterView&) override {
      return job.id == 2 ? SystemId::kRuby : SystemId::kQuartz;
    }
    std::string name() const override { return "alternate"; }
  } assigner;
  std::vector<Job> jobs = {make_job(0, 10, 10, 10, 10), make_job(1, 4, 4, 4, 4),
                           make_job(2, 6, 6, 6, 6)};
  const auto result = simulate(jobs, machines, assigner);
  EXPECT_DOUBLE_EQ(result.outcomes[2].start_s, 0.0);
  EXPECT_EQ(result.outcomes[2].machine, SystemId::kRuby);
}

TEST(EasyScheduler, AllJobsComplete) {
  const auto machines = tiny_cluster(3, 3, 3, 3);
  RoundRobinAssigner assigner;
  std::vector<Job> jobs;
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    jobs.push_back(make_job(i, rng.uniform(1, 20), rng.uniform(1, 20),
                            rng.uniform(1, 20), rng.uniform(1, 20),
                            rng.bernoulli(0.3) ? 2 : 1));
  }
  const auto result = simulate(jobs, machines, assigner);
  EXPECT_EQ(result.outcomes.size(), jobs.size());
  for (const auto& o : result.outcomes) {
    EXPECT_GE(o.start_s, 0.0);
    EXPECT_GT(o.end_s, o.start_s);
  }
  EXPECT_GT(result.makespan_s, 0.0);
}

TEST(EasyScheduler, NodeCapacityNeverExceeded) {
  const auto machines = tiny_cluster(2, 2, 2, 2);
  RoundRobinAssigner assigner;
  std::vector<Job> jobs;
  Rng rng(6);
  for (int i = 0; i < 100; ++i) {
    jobs.push_back(make_job(i, rng.uniform(1, 10), rng.uniform(1, 10),
                            rng.uniform(1, 10), rng.uniform(1, 10),
                            rng.bernoulli(0.4) ? 2 : 1));
  }
  const auto result = simulate(jobs, machines, assigner);
  // Sweep events per machine and verify concurrent node usage <= capacity.
  for (const auto& machine : machines) {
    std::vector<std::pair<double, int>> events;
    for (std::size_t j = 0; j < jobs.size(); ++j) {
      if (result.outcomes[j].machine != machine.id) continue;
      events.emplace_back(result.outcomes[j].start_s, jobs[j].nodes_required);
      events.emplace_back(result.outcomes[j].end_s, -jobs[j].nodes_required);
    }
    std::sort(events.begin(), events.end(),
              [](const auto& a, const auto& b) {
                // Releases before acquisitions at the same instant.
                return a.first != b.first ? a.first < b.first : a.second < b.second;
              });
    int in_use = 0;
    for (const auto& [t, delta] : events) {
      in_use += delta;
      EXPECT_LE(in_use, machine.total_nodes);
      EXPECT_GE(in_use, 0);
    }
  }
}

TEST(EasyScheduler, Deterministic) {
  const auto machines = tiny_cluster(3, 3, 3, 3);
  std::vector<Job> jobs;
  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    jobs.push_back(make_job(i, rng.uniform(1, 9), rng.uniform(1, 9),
                            rng.uniform(1, 9), rng.uniform(1, 9)));
  }
  RandomAssigner a1(3);
  RandomAssigner a2(3);
  const auto r1 = simulate(jobs, machines, a1);
  const auto r2 = simulate(jobs, machines, a2);
  EXPECT_EQ(r1.makespan_s, r2.makespan_s);
  EXPECT_EQ(r1.avg_bounded_slowdown, r2.avg_bounded_slowdown);
}

TEST(EasyScheduler, OracleBeatsWorstCasePlacement) {
  // Jobs are 10x faster on lassen; an informed assigner must beat one that
  // always picks quartz.
  const auto machines = tiny_cluster(2, 2, 2, 2);
  std::vector<Job> jobs;
  for (int i = 0; i < 40; ++i) jobs.push_back(make_job(i, 20, 18, 2, 16));
  OracleAssigner oracle;
  const auto fast = simulate(jobs, machines, oracle);
  RoundRobinAssigner rr;
  const auto slow = simulate(jobs, machines, rr);
  EXPECT_LT(fast.makespan_s, slow.makespan_s);
}

TEST(BoundedSlowdown, ComputesBoundedRatio) {
  std::vector<JobOutcome> outcomes;
  // wait 10, run 10 -> slowdown 2.
  outcomes.push_back({SystemId::kQuartz, 10.0, 20.0});
  EXPECT_DOUBLE_EQ(average_bounded_slowdown(outcomes), 2.0);
  // Very short job: bound by tau=10 -> (90 + 1)/10 = 9.1.
  outcomes.clear();
  outcomes.push_back({SystemId::kQuartz, 90.0, 91.0});
  EXPECT_DOUBLE_EQ(average_bounded_slowdown(outcomes), 9.1);
}

TEST(BoundedSlowdown, NeverBelowOne) {
  std::vector<JobOutcome> outcomes;
  outcomes.push_back({SystemId::kQuartz, 0.0, 1.0});  // no wait, short run
  EXPECT_DOUBLE_EQ(average_bounded_slowdown(outcomes), 1.0);
}

TEST(BoundedSlowdown, RejectsBadTau) {
  EXPECT_THROW(average_bounded_slowdown({}, 0.0), mphpc::ContractViolation);
}

TEST(BoundedSlowdown, EmptyAndAllAbandonedReturnZero) {
  EXPECT_DOUBLE_EQ(average_bounded_slowdown({}), 0.0);
  std::vector<JobOutcome> outcomes;
  outcomes.push_back({SystemId::kQuartz, 10.0, 20.0, 0.0, 4, /*abandoned=*/true});
  outcomes.push_back({SystemId::kRuby, 5.0, 6.0, 0.0, 4, /*abandoned=*/true});
  EXPECT_DOUBLE_EQ(average_bounded_slowdown(outcomes), 0.0);
}

TEST(BoundedSlowdown, SkipsAbandonedOutcomes) {
  std::vector<JobOutcome> outcomes;
  outcomes.push_back({SystemId::kQuartz, 10.0, 20.0});  // slowdown 2
  outcomes.push_back({SystemId::kRuby, 500.0, 501.0, 0.0, 4, /*abandoned=*/true});
  EXPECT_DOUBLE_EQ(average_bounded_slowdown(outcomes), 2.0);
}

// ------------------------------------------------------------ guarded RPV ----

TEST(GuardedModelBasedAssigner, FollowsModelWhenPlausible) {
  const auto machines = tiny_cluster();
  std::array<int, 4> free = {2, 2, 2, 2};
  const ClusterView view(machines, free);
  GuardedModelBasedAssigner guarded;
  ModelBasedAssigner plain;
  const Job job = make_job(0, 10.0, 5.0, 2.0, 8.0);
  EXPECT_EQ(guarded.assign(job, 0, view), plain.assign(job, 0, view));
  EXPECT_EQ(guarded.fallbacks(), 0);
}

TEST(GuardedModelBasedAssigner, FallsBackOnImplausiblePredictions) {
  const auto machines = tiny_cluster();
  std::array<int, 4> free = {2, 2, 2, 2};
  const ClusterView view(machines, free);
  GuardedModelBasedAssigner assigner;

  Job nan_job = make_job(0, 10.0, 5.0, 2.0, 8.0);
  nan_job.predicted =
      core::Rpv({std::numeric_limits<double>::quiet_NaN(), 1.0, 1.0, 1.0});
  // CPU-only job: the user-preference fallback starts at quartz.
  EXPECT_EQ(assigner.assign(nan_job, 0, view), SystemId::kQuartz);
  EXPECT_EQ(assigner.fallbacks(), 1);

  Job negative_job = make_job(1, 10.0, 5.0, 2.0, 8.0);
  negative_job.predicted = core::Rpv({1.0, -0.5, 1.0, 1.0});
  EXPECT_EQ(assigner.assign(negative_job, 1, view), SystemId::kRuby);
  EXPECT_EQ(assigner.fallbacks(), 2);

  Job huge_job = make_job(2, 10.0, 5.0, 2.0, 8.0, 1, /*gpu=*/true);
  huge_job.predicted = core::Rpv({1.0, 1.0, 1e9, 1.0});  // above max_ratio
  EXPECT_EQ(assigner.assign(huge_job, 2, view), SystemId::kLassen);
  EXPECT_EQ(assigner.fallbacks(), 3);

  // A plausible job afterwards goes back through the model path.
  const Job good_job = make_job(3, 10.0, 5.0, 2.0, 8.0);
  EXPECT_EQ(assigner.assign(good_job, 3, view), SystemId::kLassen);
  EXPECT_EQ(assigner.fallbacks(), 3);
}

// ------------------------------------------ assigner order memoization ----

void expect_results_identical(const SimulationResult& a, const SimulationResult& b);

// Re-keys a workload with ids far sparser than the job count, which keeps
// the JobOrderCache disabled (see assigners.hpp): the same jobs then take
// the compute-per-call path. Fault-free scheduling is otherwise
// id-independent, so memoized and unmemoized runs must agree exactly.
std::vector<Job> with_sparse_ids(std::vector<Job> jobs) {
  for (auto& job : jobs) job.id = job.id * 1'000'000 + 17;
  return jobs;
}

TEST(ModelBasedAssigner, PrimedAssignMatchesUnprimed) {
  const auto machines = tiny_cluster();
  std::vector<Job> jobs;
  Rng rng(31);
  for (int i = 0; i < 50; ++i) {
    jobs.push_back(make_job(i, rng.uniform(1, 9), rng.uniform(1, 9),
                            rng.uniform(1, 9), rng.uniform(1, 9)));
  }
  ModelBasedAssigner primed;
  primed.prime(jobs);
  ModelBasedAssigner fresh;
  const std::array<std::array<int, 4>, 4> patterns = {
      {{2, 2, 2, 2}, {0, 2, 2, 2}, {2, 0, 0, 2}, {0, 0, 0, 0}}};
  for (const auto& free_nodes : patterns) {
    auto free = free_nodes;
    const ClusterView view(machines, free);
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      EXPECT_EQ(primed.assign(jobs[i], i, view), fresh.assign(jobs[i], i, view));
    }
  }
}

TEST(ModelBasedAssigner, MemoizedSimulationGolden) {
  const auto machines = tiny_cluster(3, 3, 3, 3);
  std::vector<Job> jobs;
  Rng rng(32);
  for (int i = 0; i < 200; ++i) {
    jobs.push_back(make_job(i, rng.uniform(1, 30), rng.uniform(1, 30),
                            rng.uniform(1, 30), rng.uniform(1, 30),
                            rng.bernoulli(0.3) ? 2 : 1));
  }
  ModelBasedAssigner memoized;
  ModelBasedAssigner per_call;
  const auto a = simulate(jobs, machines, memoized);
  const auto b = simulate(with_sparse_ids(jobs), machines, per_call);
  expect_results_identical(a, b);
}

TEST(GuardedModelBasedAssigner, MemoizedSimulationGoldenWithFallbacks) {
  const auto machines = tiny_cluster(3, 3, 3, 3);
  std::vector<Job> jobs;
  Rng rng(33);
  for (int i = 0; i < 150; ++i) {
    jobs.push_back(make_job(i, rng.uniform(1, 20), rng.uniform(1, 20),
                            rng.uniform(1, 20), rng.uniform(1, 20), 1,
                            rng.bernoulli(0.4)));
    if (i % 3 == 0) {
      // Poisoned prediction: must take the (stateful) fallback path, whose
      // round-robin counters have to advance identically with and without
      // the memoized plausibility verdict.
      jobs.back().predicted = core::Rpv({1.0, 1e9, 1.0, 1.0});
    }
  }
  GuardedModelBasedAssigner memoized;
  GuardedModelBasedAssigner per_call;
  const auto a = simulate(jobs, machines, memoized);
  const auto b = simulate(with_sparse_ids(jobs), machines, per_call);
  expect_results_identical(a, b);
  EXPECT_GT(memoized.fallbacks(), 0);
  EXPECT_EQ(memoized.fallbacks(), per_call.fallbacks());
}

// ------------------------------------------------------------ fault traces ----

TEST(FaultModel, GenerateIsDeterministicPerSeed) {
  const auto machines = tiny_cluster(8, 8, 8, 8);
  const RetryPolicy retry;
  const auto model_a = FaultModel::uniform(3600.0, 600.0, 0.1, retry, 42);
  const auto model_b = FaultModel::uniform(3600.0, 600.0, 0.1, retry, 42);
  const auto model_c = FaultModel::uniform(3600.0, 600.0, 0.1, retry, 43);
  const auto a = model_a.generate(machines, 50'000.0);
  const auto b = model_b.generate(machines, 50'000.0);
  const auto c = model_c.generate(machines, 50'000.0);

  ASSERT_EQ(a.events.size(), b.events.size());
  ASSERT_GT(a.events.size(), 0u);
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].time_s, b.events[i].time_s);
    EXPECT_EQ(a.events[i].machine, b.events[i].machine);
    EXPECT_EQ(a.events[i].delta, b.events[i].delta);
  }
  // A different seed must produce a different trace.
  bool differs = c.events.size() != a.events.size();
  for (std::size_t i = 0; !differs && i < a.events.size(); ++i) {
    differs = a.events[i].time_s != c.events[i].time_s;
  }
  EXPECT_TRUE(differs);
}

TEST(FaultModel, TraceIsWellFormed) {
  const auto machines = tiny_cluster(3, 3, 3, 3);
  const auto model = FaultModel::uniform(1800.0, 900.0, 0.0, {}, 9);
  const auto trace = model.generate(machines, 40'000.0);
  ASSERT_GT(trace.events.size(), 0u);
  EXPECT_EQ(trace.events.size() % 2, 0u);  // downs pair with ups

  std::array<int, arch::kNumSystems> down{};
  double last_t = 0.0;
  for (const NodeEvent& e : trace.events) {
    EXPECT_GE(e.time_s, last_t);  // sorted
    last_t = e.time_s;
    auto& d = down[static_cast<std::size_t>(e.machine)];
    d -= e.delta;
    EXPECT_GE(d, 0);  // never repair a node that is not down
    EXPECT_LE(d, 3);  // never exceed the machine's inventory
  }
  for (const int d : down) EXPECT_EQ(d, 0);  // every down has its up
}

TEST(FaultModel, DisabledModelGeneratesEmptyTrace) {
  const auto machines = tiny_cluster();
  EXPECT_FALSE(FaultModel::none().enabled());
  const auto trace = FaultModel::none().generate(machines, 1e6);
  EXPECT_FALSE(trace.enabled());
  EXPECT_TRUE(trace.events.empty());
}

// -------------------------------------------------------- faulty scheduling ----

/// Field-by-field equality of two simulation results (bit-identical
/// doubles; == is exact).
void expect_results_identical(const SimulationResult& a, const SimulationResult& b) {
  EXPECT_EQ(a.makespan_s, b.makespan_s);
  EXPECT_EQ(a.avg_bounded_slowdown, b.avg_bounded_slowdown);
  EXPECT_EQ(a.avg_wait_s, b.avg_wait_s);
  EXPECT_EQ(a.node_seconds, b.node_seconds);
  EXPECT_EQ(a.lost_node_seconds, b.lost_node_seconds);
  EXPECT_EQ(a.downtime_node_seconds, b.downtime_node_seconds);
  EXPECT_EQ(a.checkpoint_overhead_node_seconds, b.checkpoint_overhead_node_seconds);
  EXPECT_EQ(a.recovered_node_seconds, b.recovered_node_seconds);
  EXPECT_EQ(a.checkpoints_written, b.checkpoints_written);
  EXPECT_EQ(a.jobs_killed, b.jobs_killed);
  EXPECT_EQ(a.total_retries, b.total_retries);
  EXPECT_EQ(a.completed_jobs, b.completed_jobs);
  EXPECT_EQ(a.abandoned_jobs, b.abandoned_jobs);
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  for (std::size_t j = 0; j < a.outcomes.size(); ++j) {
    EXPECT_EQ(a.outcomes[j].machine, b.outcomes[j].machine);
    EXPECT_EQ(a.outcomes[j].start_s, b.outcomes[j].start_s);
    EXPECT_EQ(a.outcomes[j].end_s, b.outcomes[j].end_s);
    EXPECT_EQ(a.outcomes[j].attempts, b.outcomes[j].attempts);
    EXPECT_EQ(a.outcomes[j].abandoned, b.outcomes[j].abandoned);
  }
}

std::vector<Job> random_workload(int n, std::uint64_t seed) {
  std::vector<Job> jobs;
  Rng rng(seed);
  for (int i = 0; i < n; ++i) {
    jobs.push_back(make_job(i, rng.uniform(1, 30), rng.uniform(1, 30),
                            rng.uniform(1, 30), rng.uniform(1, 30),
                            rng.bernoulli(0.3) ? 2 : 1, rng.bernoulli(0.4)));
  }
  return jobs;
}

TEST(FaultyScheduler, NoneTraceReproducesFaultFreeRunBitIdentically) {
  const auto machines = tiny_cluster(3, 3, 3, 3);
  const auto jobs = random_workload(150, 21);
  RandomAssigner a1(3);
  RandomAssigner a2(3);
  const auto fault_free = simulate(jobs, machines, a1);
  const auto with_none = simulate(jobs, machines, a2, FaultTrace::none());
  expect_results_identical(fault_free, with_none);
  EXPECT_EQ(with_none.jobs_killed, 0);
  EXPECT_EQ(with_none.total_retries, 0);
  EXPECT_EQ(with_none.completed_jobs, jobs.size());
  EXPECT_EQ(with_none.abandoned_jobs, 0u);
}

TEST(FaultyScheduler, NodeFailureKillsAndReschedulesJob) {
  // quartz has 2 nodes; one 2-node job runs [0, 100). A node goes down at
  // t=10 (no idle node -> the job is killed) and is repaired at t=50.
  // With base delay 5 and no jitter the retry is queued at t=15, but the
  // machine cannot fit 2 nodes until the repair, so attempt 2 runs
  // [50, 150).
  const auto machines = tiny_cluster();
  class QuartzOnly final : public MachineAssigner {
   public:
    arch::SystemId assign(const Job&, std::size_t, const ClusterView&) override {
      return SystemId::kQuartz;
    }
    std::string name() const override { return "quartz-only"; }
  } assigner;

  FaultTrace trace;
  trace.events = {{10.0, SystemId::kQuartz, -1}, {50.0, SystemId::kQuartz, +1}};
  trace.retry = {/*max_attempts=*/4, /*base_delay_s=*/5.0, /*multiplier=*/2.0,
                 /*max_delay_s=*/3600.0, /*jitter=*/0.0};

  const std::vector<Job> jobs = {make_job(0, 100, 100, 100, 100, /*nodes=*/2)};
  const auto result = simulate(jobs, machines, assigner, trace);

  EXPECT_EQ(result.jobs_killed, 1);
  EXPECT_EQ(result.total_retries, 1);
  EXPECT_EQ(result.completed_jobs, 1u);
  EXPECT_EQ(result.abandoned_jobs, 0u);
  EXPECT_EQ(result.outcomes[0].attempts, 2);
  EXPECT_FALSE(result.outcomes[0].abandoned);
  EXPECT_DOUBLE_EQ(result.outcomes[0].start_s, 50.0);
  EXPECT_DOUBLE_EQ(result.outcomes[0].end_s, 150.0);
  EXPECT_DOUBLE_EQ(result.makespan_s, 150.0);
  const auto q = static_cast<std::size_t>(SystemId::kQuartz);
  EXPECT_DOUBLE_EQ(result.lost_node_seconds[q], 20.0);      // 2 nodes x 10 s
  EXPECT_DOUBLE_EQ(result.downtime_node_seconds[q], 40.0);  // 1 node, [10, 50)
  EXPECT_DOUBLE_EQ(result.node_seconds[q], 200.0);          // 2 nodes x 100 s
}

TEST(FaultyScheduler, CertainKillsAbandonEveryJob) {
  const auto machines = tiny_cluster();
  RoundRobinAssigner assigner;
  const auto jobs = random_workload(20, 33);

  FaultTrace trace;
  trace.kill_probability = 1.0;  // every attempt dies mid-run
  trace.retry.max_attempts = 3;
  trace.seed = 5;

  const auto result = simulate(jobs, machines, assigner, trace);
  EXPECT_EQ(result.completed_jobs, 0u);
  EXPECT_EQ(result.abandoned_jobs, jobs.size());
  EXPECT_EQ(result.jobs_killed, static_cast<long long>(jobs.size()) * 3);
  EXPECT_EQ(result.total_retries, static_cast<long long>(jobs.size()) * 2);
  EXPECT_DOUBLE_EQ(result.avg_bounded_slowdown, 0.0);
  for (const JobOutcome& o : result.outcomes) {
    EXPECT_TRUE(o.abandoned);
    EXPECT_EQ(o.attempts, 3);
    EXPECT_GE(o.end_s, o.start_s);
  }
}

TEST(FaultyScheduler, NodeSecondsReconcile) {
  // Committed + lost + downtime + idle node-seconds must equal
  // makespan x capacity on every machine, with idle >= 0.
  const auto machines = tiny_cluster(4, 4, 4, 4);
  const auto jobs = random_workload(200, 8);
  const auto model = FaultModel::uniform(2000.0, 300.0, 0.15, {}, 17);
  const auto trace = model.generate(machines, 50'000.0);
  ASSERT_TRUE(trace.enabled());
  RoundRobinAssigner assigner;
  const auto result = simulate(jobs, machines, assigner, trace);
  EXPECT_GT(result.jobs_killed, 0);

  for (const Machine& machine : machines) {
    const auto k = static_cast<std::size_t>(machine.id);
    const double capacity = result.makespan_s * machine.total_nodes;
    const double used = result.node_seconds[k] + result.lost_node_seconds[k] +
                        result.downtime_node_seconds[k];
    EXPECT_GE(result.node_seconds[k], 0.0);
    EXPECT_GE(result.lost_node_seconds[k], 0.0);
    EXPECT_GE(result.downtime_node_seconds[k], 0.0);
    EXPECT_LE(used, capacity + 1e-6);  // idle = capacity - used >= 0
  }
}

TEST(FaultyScheduler, EveryKilledJobIsRescheduledOrAbandoned) {
  const auto machines = tiny_cluster(3, 3, 3, 3);
  const auto jobs = random_workload(150, 12);
  RetryPolicy retry;
  retry.max_attempts = 3;
  retry.base_delay_s = 2.0;
  const auto model = FaultModel::uniform(1500.0, 400.0, 0.2, retry, 99);
  const auto trace = model.generate(machines, 100'000.0);
  RoundRobinAssigner assigner;
  const auto result = simulate(jobs, machines, assigner, trace);

  EXPECT_GT(result.jobs_killed, 0);
  EXPECT_EQ(result.completed_jobs + result.abandoned_jobs, jobs.size());
  long long extra_attempts = 0;
  for (const JobOutcome& o : result.outcomes) {
    EXPECT_GE(o.attempts, 1);
    EXPECT_LE(o.attempts, retry.max_attempts);
    if (o.abandoned) {
      EXPECT_EQ(o.attempts, retry.max_attempts);
    }
    extra_attempts += o.attempts - 1;
  }
  // Each retry is exactly one extra attempt by some job.
  EXPECT_EQ(result.total_retries, extra_attempts);
}

TEST(FaultyScheduler, DeterministicAcrossThreadConfigs) {
  // The simulation must be bit-identical no matter how many pool threads
  // exist or how many simulations run concurrently (exercised under TSan).
  const auto machines = tiny_cluster(3, 3, 3, 3);
  const auto jobs = random_workload(120, 4);
  const auto model = FaultModel::uniform(2500.0, 500.0, 0.1, {}, 31);
  const auto trace = model.generate(machines, 50'000.0);

  RoundRobinAssigner reference_assigner;
  const auto reference = simulate(jobs, machines, reference_assigner, trace);
  EXPECT_GT(reference.jobs_killed, 0);

  for (const std::size_t threads : {1u, 2u, 8u}) {
    ThreadPool pool(threads);
    std::vector<SimulationResult> results(threads);
    pool.parallel_for(0, threads, [&](std::size_t i) {
      RoundRobinAssigner assigner;
      results[i] = simulate(jobs, machines, assigner, trace);
    });
    for (const auto& result : results) {
      expect_results_identical(reference, result);
    }
  }
}

// ------------------------------------------------------ checkpoint/restart ----

TEST(CheckpointPolicy, DisabledPolicyIsPassThrough) {
  const CheckpointPolicy off;
  EXPECT_FALSE(off.enabled());
  EXPECT_EQ(off.checkpoints_during(1e6), 0);
  // Bit-identical, not just approximately equal: the disabled policy must
  // not perturb the restart-from-zero arithmetic.
  EXPECT_EQ(off.attempt_duration(123.456), 123.456);
  const auto account = off.account_kill(50.0, 100.0);
  EXPECT_EQ(account.saved_work_s, 0.0);
  EXPECT_EQ(account.lost_work_s, 50.0);
  EXPECT_EQ(account.overhead_paid_s, 0.0);
  EXPECT_EQ(account.checkpoints, 0);
}

TEST(CheckpointPolicy, CountsWritesStrictlyBeforeCompletion) {
  const CheckpointPolicy policy{30.0, 5.0};
  ASSERT_TRUE(policy.enabled());
  EXPECT_EQ(policy.checkpoints_during(100.0), 3);  // at work 30, 60, 90
  EXPECT_EQ(policy.checkpoints_during(90.0), 2);   // none at completion
  EXPECT_EQ(policy.checkpoints_during(30.0), 0);
  EXPECT_EQ(policy.checkpoints_during(30.5), 1);
  EXPECT_DOUBLE_EQ(policy.attempt_duration(100.0), 115.0);  // 100 + 3 x 5
  EXPECT_DOUBLE_EQ(policy.attempt_duration(90.0), 100.0);   // 90 + 2 x 5
}

TEST(CheckpointPolicy, KillAccountingSplitsElapsedExactly) {
  const CheckpointPolicy policy{30.0, 5.0};  // cycle = 35 wall seconds
  // Killed at wall 50 of a 100 s-work attempt: checkpoint 1 completed at
  // wall 35, then 15 s into the second interval.
  auto account = policy.account_kill(50.0, 100.0);
  EXPECT_EQ(account.checkpoints, 1);
  EXPECT_DOUBLE_EQ(account.saved_work_s, 30.0);
  EXPECT_DOUBLE_EQ(account.overhead_paid_s, 5.0);
  EXPECT_DOUBLE_EQ(account.lost_work_s, 15.0);

  // Killed mid-write at wall 33: the interval being written is not yet
  // durable (lost), the partial write counts as overhead.
  account = policy.account_kill(33.0, 100.0);
  EXPECT_EQ(account.checkpoints, 0);
  EXPECT_DOUBLE_EQ(account.saved_work_s, 0.0);
  EXPECT_DOUBLE_EQ(account.lost_work_s, 30.0);
  EXPECT_DOUBLE_EQ(account.overhead_paid_s, 3.0);

  // Killed past the last write (wall 110 of a 115 s attempt): only the
  // final uncheckpointed stretch is lost.
  account = policy.account_kill(110.0, 100.0);
  EXPECT_EQ(account.checkpoints, 3);
  EXPECT_DOUBLE_EQ(account.saved_work_s, 90.0);
  EXPECT_DOUBLE_EQ(account.overhead_paid_s, 15.0);
  EXPECT_DOUBLE_EQ(account.lost_work_s, 5.0);

  // Invariants: the split always reconciles and a kill never loses more
  // than one interval of work.
  for (const double elapsed : {0.0, 10.0, 30.0, 34.9, 35.0, 69.0, 100.0, 114.0}) {
    const auto a = policy.account_kill(elapsed, 100.0);
    EXPECT_DOUBLE_EQ(a.saved_work_s + a.lost_work_s + a.overhead_paid_s, elapsed);
    EXPECT_LE(a.lost_work_s, policy.interval_s);
  }
}

TEST(CheckpointPolicy, YoungDalyInterval) {
  EXPECT_DOUBLE_EQ(young_daly_interval(50.0, 100.0), 100.0);  // sqrt(2*50*100)
  EXPECT_DOUBLE_EQ(young_daly_interval(60.0, 30.0 * 24.0 * 3600.0),
                   std::sqrt(2.0 * 60.0 * 30.0 * 24.0 * 3600.0));
  EXPECT_THROW(young_daly_interval(0.0, 100.0), mphpc::ContractViolation);
  EXPECT_THROW(young_daly_interval(10.0, 0.0), mphpc::ContractViolation);
}

TEST(CheckpointPolicy, TraceNodeMtbfCountsFailuresInHorizon) {
  const auto machines = tiny_cluster(2, 2, 2, 2);  // 8 nodes
  FaultTrace trace;
  trace.events = {{100.0, SystemId::kQuartz, -1}, {200.0, SystemId::kQuartz, +1},
                  {300.0, SystemId::kRuby, -1},   {400.0, SystemId::kRuby, +1},
                  {500.0, SystemId::kLassen, -1}, {600.0, SystemId::kLassen, +1},
                  {700.0, SystemId::kCorona, -1}, {800.0, SystemId::kCorona, +1},
                  {1500.0, SystemId::kQuartz, -1}};  // outside the horizon
  // 4 failures in [0, 1000) over 8 node-kiloseconds -> MTBF 2000 s.
  EXPECT_DOUBLE_EQ(trace_node_mtbf_s(trace, machines, 1000.0), 2000.0);
  // No failures in a tiny horizon -> infinite MTBF.
  EXPECT_TRUE(std::isinf(trace_node_mtbf_s(trace, machines, 50.0)));
}

TEST(CheckpointedScheduler, KillResumesFromLastCheckpoint) {
  // Mirror of NodeFailureKillsAndReschedulesJob with a {4 s, 1 s} policy.
  // Attempt 1 does 100 s of work -> 24 writes -> 124 s wall; the kill at
  // wall 10 lands exactly after write 2 (cycle 5), so 8 s of work is
  // durable. Attempt 2 resumes with 92 s remaining (22 writes, 114 s wall)
  // at the t=50 repair and ends at 164.
  const auto machines = tiny_cluster();
  class QuartzOnly final : public MachineAssigner {
   public:
    arch::SystemId assign(const Job&, std::size_t, const ClusterView&) override {
      return SystemId::kQuartz;
    }
    std::string name() const override { return "quartz-only"; }
  } assigner;

  FaultTrace trace;
  trace.events = {{10.0, SystemId::kQuartz, -1}, {50.0, SystemId::kQuartz, +1}};
  trace.retry = {/*max_attempts=*/4, /*base_delay_s=*/5.0, /*multiplier=*/2.0,
                 /*max_delay_s=*/3600.0, /*jitter=*/0.0};

  SchedulerOptions options;
  options.checkpoint = {4.0, 1.0};
  const std::vector<Job> jobs = {make_job(0, 100, 100, 100, 100, /*nodes=*/2)};
  const auto result = simulate(jobs, machines, assigner, trace, options);

  EXPECT_EQ(result.jobs_killed, 1);
  EXPECT_EQ(result.completed_jobs, 1u);
  EXPECT_EQ(result.outcomes[0].attempts, 2);
  EXPECT_DOUBLE_EQ(result.outcomes[0].start_s, 50.0);
  EXPECT_DOUBLE_EQ(result.outcomes[0].end_s, 164.0);
  const auto q = static_cast<std::size_t>(SystemId::kQuartz);
  EXPECT_DOUBLE_EQ(result.node_seconds[q], 184.0);       // 92 s work x 2 nodes
  EXPECT_DOUBLE_EQ(result.recovered_node_seconds[q], 16.0);  // 8 s x 2 nodes
  EXPECT_DOUBLE_EQ(result.lost_node_seconds[q], 0.0);    // kill right at a write
  // Kill: 2 writes paid; completion: 22 writes -> (2 + 22) x 1 s x 2 nodes.
  EXPECT_DOUBLE_EQ(result.checkpoint_overhead_node_seconds[q], 48.0);
  EXPECT_EQ(result.checkpoints_written, 24);
  EXPECT_DOUBLE_EQ(result.downtime_node_seconds[q], 40.0);
}

TEST(CheckpointedScheduler, NodeSecondsReconcileWithCheckpointing) {
  // committed + lost + recovered + overhead + downtime + idle == capacity
  // per machine, and each kill loses at most one interval of work.
  const auto machines = tiny_cluster(4, 4, 4, 4);
  const auto jobs = random_workload(200, 8);
  const auto model = FaultModel::uniform(2000.0, 300.0, 0.15, {}, 17);
  const auto trace = model.generate(machines, 50'000.0);
  ASSERT_TRUE(trace.enabled());
  RoundRobinAssigner assigner;
  SchedulerOptions options;
  options.checkpoint = {5.0, 0.5};
  const auto result = simulate(jobs, machines, assigner, trace, options);
  EXPECT_GT(result.jobs_killed, 0);
  EXPECT_GT(result.checkpoints_written, 0);

  double total_recovered = 0.0;
  double total_lost = 0.0;
  for (const Machine& machine : machines) {
    const auto k = static_cast<std::size_t>(machine.id);
    const double capacity = result.makespan_s * machine.total_nodes;
    const double used = result.node_seconds[k] + result.lost_node_seconds[k] +
                        result.recovered_node_seconds[k] +
                        result.checkpoint_overhead_node_seconds[k] +
                        result.downtime_node_seconds[k];
    EXPECT_GE(result.node_seconds[k], 0.0);
    EXPECT_GE(result.lost_node_seconds[k], 0.0);
    EXPECT_GE(result.recovered_node_seconds[k], 0.0);
    EXPECT_GE(result.checkpoint_overhead_node_seconds[k], 0.0);
    EXPECT_LE(used, capacity + 1e-6);  // idle = capacity - used >= 0
    total_recovered += result.recovered_node_seconds[k];
    total_lost += result.lost_node_seconds[k];
  }
  EXPECT_GT(total_recovered, 0.0);
  // Jobs take at most 2 nodes, so each kill loses <= interval x 2.
  EXPECT_LE(total_lost, static_cast<double>(result.jobs_killed) *
                            options.checkpoint.interval_s * 2.0);
}

TEST(CheckpointedScheduler, CheckpointingRecoversWorkUnderIdenticalTrace) {
  // The acceptance property: under the same fault trace, checkpointing
  // turns lost node-seconds into recovered ones and cannot lose more per
  // kill than restart-from-zero.
  const auto machines = tiny_cluster(4, 4, 4, 4);
  const auto jobs = random_workload(200, 8);
  const auto model = FaultModel::uniform(2000.0, 300.0, 0.15, {}, 17);
  const auto trace = model.generate(machines, 50'000.0);
  RoundRobinAssigner a1;
  const auto without = simulate(jobs, machines, a1, trace);
  RoundRobinAssigner a2;
  SchedulerOptions options;
  options.checkpoint = {5.0, 0.5};
  const auto with = simulate(jobs, machines, a2, trace, options);

  const auto total = [](const std::array<double, arch::kNumSystems>& v) {
    double s = 0.0;
    for (const double x : v) s += x;
    return s;
  };
  EXPECT_GT(total(without.lost_node_seconds), 0.0);
  EXPECT_GT(total(with.recovered_node_seconds), 0.0);
  EXPECT_LT(total(with.lost_node_seconds), total(without.lost_node_seconds));
  EXPECT_EQ(total(without.recovered_node_seconds), 0.0);
  EXPECT_EQ(without.checkpoints_written, 0);
}

TEST(CheckpointedScheduler, ZeroIntervalGoldenIdenticalToNoPolicy) {
  // A disabled policy (interval 0, even with a nonzero overhead setting)
  // must be bit-identical to the scheduler without any policy, across
  // thread configurations (exercised under TSan).
  const auto machines = tiny_cluster(3, 3, 3, 3);
  const auto jobs = random_workload(120, 4);
  const auto model = FaultModel::uniform(2500.0, 500.0, 0.1, {}, 31);
  const auto trace = model.generate(machines, 50'000.0);

  RoundRobinAssigner reference_assigner;
  const auto reference = simulate(jobs, machines, reference_assigner, trace);
  EXPECT_GT(reference.jobs_killed, 0);

  SchedulerOptions zero;
  zero.checkpoint = {0.0, 5.0};  // interval 0 -> disabled
  for (const std::size_t threads : {1u, 2u, 8u}) {
    ThreadPool pool(threads);
    std::vector<SimulationResult> results(threads);
    pool.parallel_for(0, threads, [&](std::size_t i) {
      RoundRobinAssigner assigner;
      results[i] = simulate(jobs, machines, assigner, trace, zero);
    });
    for (const auto& result : results) {
      expect_results_identical(reference, result);
      EXPECT_EQ(result.checkpoints_written, 0);
    }
  }
}

TEST(RetryPolicy, BackoffIsCappedAndJittered) {
  RetryPolicy policy;
  policy.base_delay_s = 10.0;
  policy.multiplier = 2.0;
  policy.max_delay_s = 60.0;
  policy.jitter = 0.0;
  EXPECT_DOUBLE_EQ(policy.delay_s(1, 0.5), 10.0);
  EXPECT_DOUBLE_EQ(policy.delay_s(2, 0.5), 20.0);
  EXPECT_DOUBLE_EQ(policy.delay_s(3, 0.5), 40.0);
  EXPECT_DOUBLE_EQ(policy.delay_s(4, 0.5), 60.0);   // capped
  EXPECT_DOUBLE_EQ(policy.delay_s(50, 0.5), 60.0);  // stays capped

  policy.jitter = 0.5;
  EXPECT_DOUBLE_EQ(policy.delay_s(1, 0.0), 5.0);   // -50 %
  EXPECT_DOUBLE_EQ(policy.delay_s(1, 0.5), 10.0);  // midpoint
  EXPECT_GT(policy.delay_s(1, 0.999), 14.9);       // approx +50 %
  EXPECT_THROW(policy.delay_s(0, 0.5), mphpc::ContractViolation);
}

// ------------------------------------------------- calendar event queue ----

struct EventOrder {
  bool operator()(const SimEvent& a, const SimEvent& b) const noexcept {
    return event_before(a, b);
  }
};

TEST(CalendarQueue, EmptyQueueReportsInfiniteNextTime) {
  CalendarQueue queue;
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(queue.size(), 0u);
  EXPECT_EQ(queue.next_time(), std::numeric_limits<double>::infinity());
}

void expect_events_equal(const SimEvent& a, const SimEvent& b) {
  EXPECT_EQ(a.time_s, b.time_s);
  EXPECT_EQ(a.kind, b.kind);
  EXPECT_EQ(a.seq, b.seq);
  EXPECT_EQ(a.sub, b.sub);
}

TEST(CalendarQueue, PopsMatchReferenceOrderUnderMonotoneChurn) {
  // Interleaved pushes and pops against a sorted-multiset oracle, with
  // pushes constrained to never predate the last pop (the engine's
  // monotone access pattern). Duplicate timestamps are forced often so
  // the (time, kind, seq, sub) tie-break is exercised, not just times.
  CalendarQueue queue;
  std::multiset<SimEvent, EventOrder> oracle;
  Rng rng(404);
  double now = 0.0;
  for (int step = 0; step < 20'000; ++step) {
    if (oracle.empty() || rng.bernoulli(0.55)) {
      SimEvent event;
      // Quantized offsets make exact-time collisions common.
      event.time_s = now + static_cast<double>(rng.below(64)) * 0.25;
      event.kind = static_cast<std::uint32_t>(rng.below(2));
      event.seq = rng.below(16);
      event.sub = rng.below(4);
      queue.push(event);
      oracle.insert(event);
    } else {
      ASSERT_EQ(queue.next_time(), oracle.begin()->time_s);
      const SimEvent popped = queue.pop_front();
      expect_events_equal(popped, *oracle.begin());
      oracle.erase(oracle.begin());
      now = popped.time_s;
    }
    ASSERT_EQ(queue.size(), oracle.size());
  }
  while (!oracle.empty()) {
    expect_events_equal(queue.pop_front(), *oracle.begin());
    oracle.erase(oracle.begin());
  }
  EXPECT_TRUE(queue.empty());
}

TEST(CalendarQueue, PopOrderIsIndependentOfInsertionOrder) {
  // The same event set pushed forwards and backwards must drain in the
  // identical sequence: ordering is the explicit total order, never a
  // bucket-layout or insertion-order accident.
  std::vector<SimEvent> events;
  Rng rng(7);
  for (int i = 0; i < 2'000; ++i) {
    events.push_back({static_cast<double>(rng.below(50)),
                      static_cast<std::uint32_t>(rng.below(2)), rng.below(8),
                      rng.below(3)});
  }
  CalendarQueue forward;
  CalendarQueue backward;
  for (const SimEvent& e : events) forward.push(e);
  for (auto it = events.rbegin(); it != events.rend(); ++it) backward.push(*it);
  while (!forward.empty()) {
    ASSERT_FALSE(backward.empty());
    expect_events_equal(forward.pop_front(), backward.pop_front());
  }
  EXPECT_TRUE(backward.empty());
}

TEST(CalendarQueue, BurstGrowthThenDrainKeepsOrder) {
  // A 50k-event burst forces repeated grow rebuilds; the full drain then
  // forces shrink rebuilds. Order must survive every geometry change.
  CalendarQueue queue;
  std::multiset<SimEvent, EventOrder> oracle;
  Rng rng(11);
  for (int i = 0; i < 50'000; ++i) {
    const SimEvent event{rng.uniform() * 1e4, 1,
                         static_cast<std::uint64_t>(i), 0};
    queue.push(event);
    oracle.insert(event);
  }
  while (!oracle.empty()) {
    expect_events_equal(queue.pop_front(), *oracle.begin());
    oracle.erase(oracle.begin());
  }
  EXPECT_TRUE(queue.empty());
}

TEST(CalendarQueue, DegenerateTimeDistributionsStaySorted) {
  {
    // Every event at the same instant: span 0 defeats width estimation;
    // the tie-break alone must order the drain.
    CalendarQueue queue;
    for (std::uint64_t seq = 100; seq-- > 0;) {
      queue.push({42.0, 1, seq, 0});
    }
    for (std::uint64_t seq = 0; seq < 100; ++seq) {
      const SimEvent event = queue.pop_front();
      EXPECT_EQ(event.time_s, 42.0);
      EXPECT_EQ(event.seq, seq);
    }
  }
  {
    // Huge timestamps near the exact-slot limit plus tiny gaps: the
    // fmod/full-scan fallbacks must keep exact order.
    CalendarQueue queue;
    std::multiset<SimEvent, EventOrder> oracle;
    Rng rng(13);
    for (int i = 0; i < 500; ++i) {
      const SimEvent event{4.0e15 + rng.uniform() * 4.0, 1,
                           static_cast<std::uint64_t>(i), 0};
      queue.push(event);
      oracle.insert(event);
    }
    while (!oracle.empty()) {
      expect_events_equal(queue.pop_front(), *oracle.begin());
      oracle.erase(oracle.begin());
    }
  }
}

// ---------------------------------------------- engine golden equivalence ----

/// Runs the same simulation through the calendar and reference engines
/// with independently constructed assigners and requires bit-identical
/// results.
template <typename MakeAssigner>
void expect_engines_identical(const std::vector<Job>& jobs,
                              const std::vector<Machine>& machines,
                              const FaultTrace& trace, SchedulerOptions options,
                              MakeAssigner make_assigner) {
  auto calendar_assigner = make_assigner();
  auto reference_assigner = make_assigner();
  options.engine = SimEngineKind::kCalendar;
  const auto calendar =
      simulate(jobs, machines, calendar_assigner, trace, options);
  options.engine = SimEngineKind::kReference;
  const auto reference =
      simulate(jobs, machines, reference_assigner, trace, options);
  expect_results_identical(calendar, reference);
}

TEST(EngineGolden, AllAssignersIdenticalUnderFaultsAndCheckpoints) {
  const auto machines = tiny_cluster(3, 3, 3, 3);
  const auto jobs = random_workload(1'500, 17);
  const auto model = FaultModel::uniform(2000.0, 400.0, 0.05, {}, 23);
  const auto trace = model.generate(machines, 50'000.0);
  ASSERT_TRUE(trace.enabled());
  SchedulerOptions options;
  options.checkpoint = {40.0, 2.0};
  expect_engines_identical(jobs, machines, trace, options,
                           [] { return RoundRobinAssigner(); });
  expect_engines_identical(jobs, machines, trace, options,
                           [] { return RandomAssigner(9); });
  expect_engines_identical(jobs, machines, trace, options,
                           [] { return UserRoundRobinAssigner(); });
  expect_engines_identical(jobs, machines, trace, options,
                           [] { return ModelBasedAssigner(); });
  expect_engines_identical(jobs, machines, trace, options,
                           [] { return OracleAssigner(); });
  expect_engines_identical(jobs, machines, trace, options,
                           [] { return GuardedModelBasedAssigner(); });
}

TEST(EngineGolden, BoundedDepthIdenticalForStatefulAssigners) {
  // With a stateful assigner both engines take the full-scan backfill
  // path, so a bounded depth must count candidates identically.
  // (Stateless assigners use the indexed path, whose depth accounting
  // intentionally differs — see SchedulerOptions::backfill_depth.)
  const auto machines = tiny_cluster();
  const auto jobs = random_workload(800, 29);
  const auto model = FaultModel::uniform(3000.0, 500.0, 0.08, {}, 41);
  const auto trace = model.generate(machines, 80'000.0);
  for (const int depth : {1, 3, 16}) {
    SchedulerOptions options;
    options.backfill_depth = depth;
    expect_engines_identical(jobs, machines, trace, options,
                             [] { return RandomAssigner(31); });
    expect_engines_identical(jobs, machines, trace, options,
                             [] { return UserRoundRobinAssigner(); });
  }
}

TEST(EngineGolden, GuardedFallbackPathIdentical) {
  // Implausible predictions force GuardedModelBasedAssigner off its pure
  // path (stateless_assign() false after prime), so the calendar engine
  // must fall back to the legacy full-scan backfill and still match.
  const auto machines = tiny_cluster(3, 3, 3, 3);
  auto jobs = random_workload(800, 5);
  for (std::size_t i = 0; i < jobs.size(); i += 7) {
    jobs[i].predicted =
        core::Rpv({std::numeric_limits<double>::quiet_NaN(), 1.0, 1.0, 1.0});
  }
  const auto model = FaultModel::uniform(2500.0, 400.0, 0.05, {}, 59);
  const auto trace = model.generate(machines, 60'000.0);
  SchedulerOptions options;
  options.backfill_depth = 3;
  expect_engines_identical(jobs, machines, trace, options,
                           [] { return GuardedModelBasedAssigner(); });
}

TEST(EngineGolden, CollidingTimestampsResolveInJobIndexOrder) {
  // Two jobs killed by two simultaneous node failures retry with zero
  // jitter, producing two release events at the *identical* timestamp.
  // The (time, kind, seq) order requires job 0 to re-queue ahead of job 1,
  // observable because only one node is back when scheduling resumes.
  const auto machines = tiny_cluster();  // quartz: 2 nodes
  class QuartzOnly final : public MachineAssigner {
   public:
    arch::SystemId assign(const Job&, std::size_t, const ClusterView&) override {
      return SystemId::kQuartz;
    }
    std::string name() const override { return "quartz-only"; }
  };

  FaultTrace trace;
  trace.events = {{10.0, SystemId::kQuartz, -1},
                  {10.0, SystemId::kQuartz, -1},
                  {50.0, SystemId::kQuartz, +1},
                  {80.0, SystemId::kQuartz, +1}};
  trace.retry = {/*max_attempts=*/4, /*base_delay_s=*/5.0, /*multiplier=*/2.0,
                 /*max_delay_s=*/3600.0, /*jitter=*/0.0};

  const std::vector<Job> jobs = {make_job(0, 100, 100, 100, 100),
                                 make_job(1, 100, 100, 100, 100)};
  SchedulerOptions options;
  for (const auto engine : {SimEngineKind::kCalendar, SimEngineKind::kReference}) {
    options.engine = engine;
    QuartzOnly assigner;
    const auto result = simulate(jobs, machines, assigner, trace, options);
    EXPECT_EQ(result.jobs_killed, 2);
    EXPECT_EQ(result.total_retries, 2);
    EXPECT_EQ(result.completed_jobs, 2u);
    // Both retries release at exactly t = 15; the seq tie-break hands the
    // single repaired node at t = 50 to job 0, the t = 80 node to job 1.
    EXPECT_DOUBLE_EQ(result.outcomes[0].start_s, 50.0);
    EXPECT_DOUBLE_EQ(result.outcomes[0].end_s, 150.0);
    EXPECT_DOUBLE_EQ(result.outcomes[1].start_s, 80.0);
    EXPECT_DOUBLE_EQ(result.outcomes[1].end_s, 180.0);
    EXPECT_DOUBLE_EQ(result.makespan_s, 180.0);
  }
  expect_engines_identical(jobs, machines, trace, SchedulerOptions{},
                           [] { return QuartzOnly(); });
}

// -------------------------------------------------- checkpoint planners ----

TEST(CheckpointPlanner, PerAppUniformPolicyMatchesFixedPolicyBitIdentically) {
  // When every job shares one app, a per-app planner naming that app must
  // reproduce the fixed-policy run exactly — and the planner must win
  // over an options.checkpoint it overrides.
  const auto machines = tiny_cluster(3, 3, 3, 3);
  const auto jobs = random_workload(400, 61);  // every job is "TestApp"
  const auto model = FaultModel::uniform(2000.0, 400.0, 0.1, {}, 67);
  const auto trace = model.generate(machines, 50'000.0);
  // Interval well under the 1-30 s runtimes so attempts actually write.
  const CheckpointPolicy policy{5.0, 0.5};

  SchedulerOptions fixed;
  fixed.checkpoint = policy;
  RoundRobinAssigner a1;
  const auto fixed_run = simulate(jobs, machines, a1, trace, fixed);
  EXPECT_GT(fixed_run.checkpoints_written, 0);

  PerAppCheckpointPlanner planner({});
  planner.set("TestApp", policy);
  SchedulerOptions planned;
  planned.planner = &planner;
  planned.checkpoint = {999.0, 9.0};  // must be ignored: planner wins
  RoundRobinAssigner a2;
  const auto planned_run = simulate(jobs, machines, a2, trace, planned);
  expect_results_identical(fixed_run, planned_run);
}

TEST(CheckpointPlanner, PerAppPolicyForUnknownAppIsDisabledRun) {
  const auto machines = tiny_cluster(3, 3, 3, 3);
  const auto jobs = random_workload(300, 71);
  const auto model = FaultModel::uniform(2000.0, 400.0, 0.1, {}, 73);
  const auto trace = model.generate(machines, 50'000.0);

  RoundRobinAssigner a1;
  const auto plain = simulate(jobs, machines, a1, trace);

  PerAppCheckpointPlanner planner({});  // disabled fallback
  planner.set("NoSuchApp", {30.0, 2.0});
  SchedulerOptions options;
  options.planner = &planner;
  RoundRobinAssigner a2;
  const auto planned = simulate(jobs, machines, a2, trace, options);
  expect_results_identical(plain, planned);
  EXPECT_EQ(planned.checkpoints_written, 0);
}

TEST(AdaptiveYoungDaly, EstimateBlendsPriorAndObservedFailures) {
  const Job job = make_job(0, 10, 10, 10, 10);
  {
    // No prior, no observations: nothing suggests failures happen, so
    // checkpointing stays off.
    AdaptiveYoungDalyPlanner planner(10.0, /*prior_mtbf_s=*/0.0);
    planner.begin(4);
    EXPECT_TRUE(std::isinf(planner.estimated_mtbf_s(100.0)));
    EXPECT_FALSE(planner.policy_for(job, 100.0).enabled());

    // Two failures over 4 nodes x 100 s of node-time: MTBF = 400 / 2.
    planner.observe_node_failure(50.0);
    planner.observe_node_failure(80.0);
    EXPECT_EQ(planner.observed_failures(), 2);
    EXPECT_DOUBLE_EQ(planner.estimated_mtbf_s(100.0), 200.0);
    const auto policy = planner.policy_for(job, 100.0);
    EXPECT_DOUBLE_EQ(policy.interval_s, young_daly_interval(10.0, 200.0));
    EXPECT_DOUBLE_EQ(policy.overhead_s, 10.0);
  }
  {
    // A prior acts as prior_weight pseudo-failures at the prior MTBF.
    AdaptiveYoungDalyPlanner planner(10.0, /*prior_mtbf_s=*/1000.0,
                                     /*prior_weight=*/4.0);
    planner.begin(4);
    EXPECT_DOUBLE_EQ(planner.estimated_mtbf_s(0.0), 1000.0);
    planner.observe_node_failure(0.0);
    // (4 nodes x 500 s + 4 x 1000) / (1 + 4) = 1200.
    EXPECT_DOUBLE_EQ(planner.estimated_mtbf_s(500.0), 1200.0);
  }
  {
    // Zero overhead disables checkpointing regardless of the estimate.
    AdaptiveYoungDalyPlanner planner(0.0, 1000.0);
    planner.begin(4);
    EXPECT_FALSE(planner.policy_for(job, 100.0).enabled());
  }
}

TEST(AdaptiveYoungDaly, SimulationIsDeterministicAndEngineIdentical) {
  const auto machines = tiny_cluster(3, 3, 3, 3);
  const auto jobs = random_workload(400, 81);
  const auto model = FaultModel::uniform(1500.0, 400.0, 0.1, {}, 83);
  const auto trace = model.generate(machines, 80'000.0);

  const auto run = [&](SimEngineKind engine) {
    // Small overhead keeps the Young/Daly interval (~sqrt(2 C MTBF), MTBF
    // near 2000 s here) below the 1-30 s runtimes so checkpoints happen.
    AdaptiveYoungDalyPlanner planner(/*overhead_s=*/0.05,
                                     /*prior_mtbf_s=*/2000.0);
    SchedulerOptions options;
    options.planner = &planner;
    options.engine = engine;
    RoundRobinAssigner assigner;
    auto result = simulate(jobs, machines, assigner, trace, options);
    EXPECT_GT(planner.observed_failures(), 0);
    return result;
  };

  const auto calendar = run(SimEngineKind::kCalendar);
  const auto calendar_again = run(SimEngineKind::kCalendar);
  const auto reference = run(SimEngineKind::kReference);
  expect_results_identical(calendar, calendar_again);
  expect_results_identical(calendar, reference);
  EXPECT_GT(calendar.checkpoints_written, 0);
}

// ------------------------------------------------------- scale (gated) ----

TEST(SchedScale, MillionJobFaultySimulationCompletes) {
  // The 1M-job scale smoke (the tracked wall-time baseline lives in
  // results/BENCH_sched.json via `mphpc sched-scale`). Too slow for the
  // default tier-1 run; opt in with MPHPC_SCHED_SCALE=1.
  if (std::getenv("MPHPC_SCHED_SCALE") == nullptr) {
    GTEST_SKIP() << "set MPHPC_SCHED_SCALE=1 to run the 1M-job scale smoke";
  }
  const arch::SystemCatalog catalog;
  const auto machines = default_cluster(catalog);
  const auto jobs = random_workload(1'000'000, 77);
  const auto model =
      FaultModel::uniform(/*node_mtbf_s=*/200.0 * 3600.0,
                          /*mttr_s=*/2.0 * 3600.0, /*kill_probability=*/0.02,
                          {}, 7);
  const auto trace = model.generate(machines, 50'000.0);
  GuardedModelBasedAssigner assigner;
  SchedulerOptions options;
  options.backfill_depth = 1000;
  const auto result = simulate(jobs, machines, assigner, trace, options);
  EXPECT_EQ(result.completed_jobs + result.abandoned_jobs, jobs.size());
  EXPECT_GT(result.jobs_killed, 0);
}

}  // namespace
}  // namespace mphpc::sched
