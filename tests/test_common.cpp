// Tests for src/common: RNG, distributions, strings, JSON, thread pool.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <numeric>
#include <set>
#include <stdexcept>

#include "common/distributions.hpp"
#include "common/contract.hpp"
#include "common/json_writer.hpp"
#include "common/rng.hpp"
#include "common/strings.hpp"
#include "common/table_printer.hpp"
#include "common/thread_pool.hpp"
#include "common/timer.hpp"

namespace mphpc {
namespace {

// ---------------------------------------------------------------- RNG ----

TEST(Rng, SameSeedSameSequence) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(3.0, 5.0);
    EXPECT_GE(u, 3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMeanIsHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, BelowStaysBelow) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, BelowCoversAllValues) {
  Rng rng(3);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, RangeInclusive) {
  Rng rng(5);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(9);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(DeriveSeed, DeterministicAndSensitive) {
  EXPECT_EQ(derive_seed(1, "app", 7), derive_seed(1, "app", 7));
  EXPECT_NE(derive_seed(1, "app", 7), derive_seed(1, "app", 8));
  EXPECT_NE(derive_seed(1, "app", 7), derive_seed(2, "app", 7));
  EXPECT_NE(derive_seed(1, "app", 7), derive_seed(1, "bpp", 7));
}

TEST(DeriveSeed, OrderMatters) {
  EXPECT_NE(derive_seed(1, "a", "b"), derive_seed(1, "b", "a"));
}

TEST(Fnv1a, KnownValues) {
  EXPECT_EQ(fnv1a(""), 0xCBF29CE484222325ULL);
  EXPECT_NE(fnv1a("a"), fnv1a("b"));
}

// ------------------------------------------------------- distributions ----

TEST(Distributions, NormalMoments) {
  Rng rng(21);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = normal(rng);
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.02);
}

TEST(Distributions, NormalShiftScale) {
  Rng rng(22);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += normal(rng, 10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Distributions, LognormalMedianNearOne) {
  Rng rng(23);
  std::vector<double> v(10001);
  for (auto& x : v) x = lognormal_factor(rng, 0.3);
  std::nth_element(v.begin(), v.begin() + 5000, v.end());
  EXPECT_NEAR(v[5000], 1.0, 0.03);
  for (const double x : v) EXPECT_GT(x, 0.0);
}

TEST(Distributions, ExponentialMean) {
  Rng rng(24);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += exponential(rng, 2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Distributions, ExponentialRejectsBadRate) {
  Rng rng(1);
  EXPECT_THROW(exponential(rng, 0.0), ContractViolation);
}

TEST(Distributions, WeightedChoiceFrequencies) {
  Rng rng(25);
  const std::vector<double> w = {1.0, 3.0};
  int ones = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) ones += weighted_choice(rng, w) == 1 ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(ones) / n, 0.75, 0.01);
}

TEST(Distributions, WeightedChoiceZeroWeightNeverPicked) {
  Rng rng(26);
  const std::vector<double> w = {0.0, 1.0, 0.0};
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(weighted_choice(rng, w), 1u);
}

TEST(Distributions, WeightedChoiceRejectsAllZero) {
  Rng rng(1);
  const std::vector<double> w = {0.0, 0.0};
  EXPECT_THROW(weighted_choice(rng, w), ContractViolation);
}

TEST(Distributions, PermutationIsPermutation) {
  Rng rng(27);
  const auto perm = permutation(rng, 100);
  std::set<std::size_t> seen(perm.begin(), perm.end());
  EXPECT_EQ(seen.size(), 100u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 99u);
}

TEST(Distributions, SampleWithoutReplacementDistinct) {
  Rng rng(28);
  const auto sample = sample_without_replacement(rng, 50, 20);
  EXPECT_EQ(sample.size(), 20u);
  const std::set<std::size_t> seen(sample.begin(), sample.end());
  EXPECT_EQ(seen.size(), 20u);
  for (const auto v : sample) EXPECT_LT(v, 50u);
}

TEST(Distributions, SampleWithoutReplacementFull) {
  Rng rng(29);
  const auto sample = sample_without_replacement(rng, 10, 10);
  const std::set<std::size_t> seen(sample.begin(), sample.end());
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Distributions, SampleWithoutReplacementRejectsOversample) {
  Rng rng(1);
  EXPECT_THROW(sample_without_replacement(rng, 5, 6), ContractViolation);
}

// -------------------------------------------------------------- strings ----

TEST(Strings, SplitKeepsEmptyFields) {
  const auto parts = split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
}

TEST(Strings, SplitSingleField) {
  const auto parts = split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(Strings, SplitEmptyString) {
  const auto parts = split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(Strings, JoinRoundTrip) {
  const std::vector<std::string> parts = {"x", "y", "z"};
  EXPECT_EQ(join(parts, ","), "x,y,z");
  EXPECT_EQ(split(join(parts, ","), ','), parts);
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  abc \t\n"), "abc");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("a b"), "a b");
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(starts_with("hello", "he"));
  EXPECT_FALSE(starts_with("hello", "lo"));
  EXPECT_TRUE(starts_with("x", ""));
  EXPECT_FALSE(starts_with("", "x"));
}

TEST(Strings, ToLower) { EXPECT_EQ(to_lower("QuArTz"), "quartz"); }

TEST(Strings, FormatDoubleRoundTrips) {
  for (const double v : {1.0, -0.25, 3.141592653589793, 1e-30, 1e30}) {
    EXPECT_EQ(parse_double(format_double(v)), v);
  }
}

TEST(Strings, FormatFixed) { EXPECT_EQ(format_fixed(3.14159, 2), "3.14"); }

TEST(Strings, ParseDoubleRejectsJunk) {
  EXPECT_THROW(parse_double("abc"), ParseError);
  EXPECT_THROW(parse_double("1.5x"), ParseError);
  EXPECT_THROW(parse_double(""), ParseError);
}

TEST(Strings, ParseIntRejectsJunk) {
  EXPECT_EQ(parse_int(" 42 "), 42);
  EXPECT_THROW(parse_int("4.2"), ParseError);
  EXPECT_THROW(parse_int(""), ParseError);
}

// ----------------------------------------------------------------- json ----

TEST(JsonWriter, SimpleObject) {
  JsonWriter w;
  w.begin_object().field("a", 1).field("b", "x").field("c", true).end_object();
  EXPECT_EQ(w.str(), R"({"a":1,"b":"x","c":true})");
}

TEST(JsonWriter, NestedStructures) {
  JsonWriter w;
  w.begin_object()
      .begin_array("items")
      .value(1LL)
      .value(2LL)
      .end_array()
      .begin_object("inner")
      .field("k", 2.5)
      .end_object()
      .end_object();
  EXPECT_EQ(w.str(), R"({"items":[1,2],"inner":{"k":2.5}})");
}

TEST(JsonWriter, EscapesSpecialCharacters) {
  JsonWriter w;
  w.begin_object().field("s", "a\"b\\c\nd").end_object();
  EXPECT_EQ(w.str(), "{\"s\":\"a\\\"b\\\\c\\nd\"}");
}

TEST(JsonWriter, UnbalancedEndThrows) {
  JsonWriter w;
  EXPECT_THROW(w.end_object(), ContractViolation);
}

// -------------------------------------------------------- table printer ----

TEST(TablePrinter, AlignsColumns) {
  TablePrinter t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"longer", "22"});
  const std::string out = t.render();
  EXPECT_NE(out.find("name    value"), std::string::npos);
  EXPECT_NE(out.find("longer  22"), std::string::npos);
}

TEST(TablePrinter, NumericRows) {
  TablePrinter t({"label", "x", "y"});
  t.add_row_numeric("row", {1.23456, 2.0}, 2);
  EXPECT_NE(t.render().find("1.23  2.00"), std::string::npos);
}

TEST(TablePrinter, RejectsWrongArity) {
  TablePrinter t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), ContractViolation);
}

// ----------------------------------------------------------- thread pool ----

TEST(ThreadPool, ParallelForCoversRange) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, hits.size(), [&](std::size_t i) { hits[i]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyRange) {
  ThreadPool pool(2);
  int calls = 0;
  pool.parallel_for(5, 5, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPool, ParallelChunksPartitionExactly) {
  ThreadPool pool(3);
  std::mutex m;
  std::vector<std::pair<std::size_t, std::size_t>> chunks;
  pool.parallel_chunks(10, 110, [&](std::size_t, std::size_t lo, std::size_t hi) {
    const std::lock_guard lock(m);
    chunks.emplace_back(lo, hi);
  });
  std::sort(chunks.begin(), chunks.end());
  std::size_t expected = 10;
  for (const auto& [lo, hi] : chunks) {
    EXPECT_EQ(lo, expected);
    EXPECT_GT(hi, lo);
    expected = hi;
  }
  EXPECT_EQ(expected, 110u);
}

TEST(ThreadPool, SubmitAndWaitIdle) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int i = 0; i < 50; ++i) {
    pool.submit([&count] { count++; });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPool, DeterministicReduction) {
  // Per-chunk accumulation reduced in fixed order must be reproducible.
  const auto run = [] {
    ThreadPool pool(4);
    std::vector<double> partial(pool.size() + 1, 0.0);
    pool.parallel_chunks(0, 10000, [&](std::size_t c, std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) partial[c] += std::sqrt(static_cast<double>(i));
    });
    double total = 0.0;
    for (const double p : partial) total += p;
    return total;
  };
  EXPECT_EQ(run(), run());
}

TEST(ThreadPool, SubmitExceptionRethrownAtWaitIdle) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  pool.submit([] { throw std::runtime_error("task failed"); });
  for (int i = 0; i < 20; ++i) {
    pool.submit([&ran] { ran++; });
  }
  try {
    pool.wait_idle();
    FAIL() << "wait_idle should rethrow the task's exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "task failed");
  }
  // Every other task still ran — one failure never cancels the queue.
  EXPECT_EQ(ran.load(), 20);
  // The slot is cleared: the pool is reusable and the next wait is clean.
  pool.submit([&ran] { ran++; });
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 21);
}

TEST(ThreadPool, SubmitOnlyFirstExceptionSurvives) {
  ThreadPool pool(4);
  for (int i = 0; i < 8; ++i) {
    pool.submit([] { throw std::runtime_error("boom"); });
  }
  // Exactly one rethrow regardless of how many tasks failed.
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  pool.wait_idle();  // nothing pending, nothing stored
}

TEST(ThreadPool, ParallelChunksBodyExceptionReachesCaller) {
  ThreadPool pool(3);
  std::atomic<int> chunks_run{0};
  try {
    pool.parallel_chunks(0, 1000, [&](std::size_t c, std::size_t, std::size_t) {
      chunks_run++;
      if (c == 1) throw std::runtime_error("chunk 1 failed");
    });
    FAIL() << "parallel_chunks should rethrow the body's exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "chunk 1 failed");
  }
  // Every chunk still executed (run-to-completion, then rethrow).
  EXPECT_EQ(chunks_run.load(), 4);
  // The pool survives: a follow-up region runs normally.
  std::atomic<int> after{0};
  pool.parallel_for(0, 100, [&after](std::size_t) { after++; });
  EXPECT_EQ(after.load(), 100);
}

TEST(ThreadPool, CallerChunkExceptionAlsoPropagates) {
  // The caller thread runs a chunk too; a throw there must not be
  // swallowed or double-delivered.
  ThreadPool pool(1);
  EXPECT_THROW(pool.parallel_chunks(
                   0, 10,
                   [](std::size_t, std::size_t, std::size_t) {
                     throw std::logic_error("every chunk fails");
                   }),
               std::logic_error);
  pool.wait_idle();  // no stray exception leaks into the submit slot
}

TEST(Timer, MeasuresElapsed) {
  const Timer t;
  EXPECT_GE(t.seconds(), 0.0);
  EXPECT_GE(t.millis(), 0.0);
}

// ---------------------------------------------------------------- errors ----

TEST(Contracts, ExpectsThrowsWithLocation) {
  try {
    MPHPC_EXPECTS(1 == 2);
    FAIL() << "should have thrown";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("test_common.cpp"), std::string::npos);
  }
}

TEST(Contracts, EnsuresThrows) {
  EXPECT_THROW(MPHPC_ENSURES(false), ContractViolation);
}

TEST(Contracts, PassingChecksDoNotThrow) {
  EXPECT_NO_THROW(MPHPC_EXPECTS(true));
  EXPECT_NO_THROW(MPHPC_ENSURES(2 + 2 == 4));
}

}  // namespace
}  // namespace mphpc
