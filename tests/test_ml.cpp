// Tests for src/ml: metrics, the model zoo, and training behaviour on
// synthetic problems with known structure.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "ml/binning.hpp"
#include "ml/compiled_ensemble.hpp"
#include "ml/decision_tree.hpp"
#include "ml/gbt.hpp"
#include "ml/linear_regressor.hpp"
#include "ml/mean_regressor.hpp"
#include "ml/metrics.hpp"
#include "ml/random_forest.hpp"

namespace mphpc::ml {
namespace {

// Builds a synthetic regression problem: y0 = 3*x0 - 2*x1 + 1,
// y1 = step(x0 > 0.5) * 4 (nonlinear), with optional noise.
struct Problem {
  Matrix x;
  Matrix y;
};

Problem make_problem(std::size_t n, double noise, std::uint64_t seed) {
  Rng rng(seed);
  Matrix x(n, 3);
  Matrix y(n, 2);
  for (std::size_t r = 0; r < n; ++r) {
    const double x0 = rng.uniform();
    const double x1 = rng.uniform();
    const double x2 = rng.uniform();  // irrelevant feature
    x(r, 0) = x0;
    x(r, 1) = x1;
    x(r, 2) = x2;
    y(r, 0) = 3.0 * x0 - 2.0 * x1 + 1.0 + noise * (rng.uniform() - 0.5);
    y(r, 1) = (x0 > 0.5 ? 4.0 : 0.0) + noise * (rng.uniform() - 0.5);
  }
  return {std::move(x), std::move(y)};
}

// ---------------------------------------------------------------- matrix ----

TEST(Matrix, ShapeAndAccess) {
  Matrix m(2, 3);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  m(1, 2) = 5.0;
  EXPECT_EQ(m.at(1, 2), 5.0);
  EXPECT_THROW(m.at(2, 0), ContractViolation);
}

TEST(Matrix, AdoptsData) {
  const Matrix m(2, 2, {1, 2, 3, 4});
  EXPECT_EQ(m(0, 1), 2.0);
  EXPECT_EQ(m(1, 0), 3.0);
  EXPECT_THROW(Matrix(2, 2, {1.0}), ContractViolation);
}

TEST(Matrix, SelectRows) {
  const Matrix m(3, 2, {1, 2, 3, 4, 5, 6});
  const std::vector<std::size_t> rows = {2, 0};
  const Matrix s = m.select_rows(rows);
  EXPECT_EQ(s(0, 0), 5.0);
  EXPECT_EQ(s(1, 1), 2.0);
}

TEST(Matrix, Column) {
  const Matrix m(2, 2, {1, 2, 3, 4});
  EXPECT_EQ(m.column(1), (std::vector<double>{2, 4}));
}

// --------------------------------------------------------------- metrics ----

TEST(Metrics, MaeExactValues) {
  const Matrix truth(2, 2, {1, 2, 3, 4});
  const Matrix pred(2, 2, {1, 3, 3, 2});
  EXPECT_DOUBLE_EQ(mean_absolute_error(truth, pred), (0 + 1 + 0 + 2) / 4.0);
}

TEST(Metrics, MaeZeroOnPerfect) {
  const Matrix m(3, 1, {1, 2, 3});
  EXPECT_EQ(mean_absolute_error(m, m), 0.0);
  EXPECT_EQ(root_mean_squared_error(m, m), 0.0);
}

TEST(Metrics, RmseExact) {
  const Matrix truth(1, 2, {0, 0});
  const Matrix pred(1, 2, {3, 4});
  EXPECT_DOUBLE_EQ(root_mean_squared_error(truth, pred), std::sqrt(12.5));
}

TEST(Metrics, R2PerfectIsOne) {
  const Matrix m(4, 1, {1, 2, 3, 4});
  EXPECT_DOUBLE_EQ(r2_score(m, m), 1.0);
}

TEST(Metrics, R2MeanPredictionIsZero) {
  const Matrix truth(4, 1, {1, 2, 3, 4});
  const Matrix pred(4, 1, {2.5, 2.5, 2.5, 2.5});
  EXPECT_NEAR(r2_score(truth, pred), 0.0, 1e-12);
}

TEST(Metrics, ShapeMismatchThrows) {
  const Matrix a(2, 2);
  const Matrix b(2, 3);
  EXPECT_THROW(mean_absolute_error(a, b), ContractViolation);
}

TEST(SameOrder, DetectsMatchingOrder) {
  const std::vector<double> a = {1.0, 0.8, 2.1, 1.5};
  const std::vector<double> b = {1.1, 0.7, 3.0, 1.2};  // same ranking
  EXPECT_TRUE(same_order(a, b));
  const std::vector<double> c = {1.1, 0.7, 1.0, 1.2};  // different ranking
  EXPECT_FALSE(same_order(a, c));
}

TEST(SameOrder, SingleElementAlwaysMatches) {
  const std::vector<double> a = {5.0};
  const std::vector<double> b = {-1.0};
  EXPECT_TRUE(same_order(a, b));
}

TEST(SameOrderScore, CountsMatchingRows) {
  const Matrix truth(2, 3, {1, 2, 3,  3, 2, 1});
  const Matrix pred(2, 3, {10, 20, 30,  1, 2, 3});  // first matches, second not
  EXPECT_DOUBLE_EQ(same_order_score(truth, pred), 0.5);
}

// ---------------------------------------------------------------- models ----

TEST(MeanRegressor, PredictsColumnMeans) {
  const Problem p = make_problem(100, 0.0, 1);
  MeanRegressor model;
  model.fit(p.x, p.y);
  const Matrix pred = model.predict(p.x);
  for (std::size_t c = 0; c < p.y.cols(); ++c) {
    double mean = 0.0;
    for (std::size_t r = 0; r < p.y.rows(); ++r) mean += p.y(r, c);
    mean /= static_cast<double>(p.y.rows());
    EXPECT_NEAR(pred(0, c), mean, 1e-12);
    EXPECT_EQ(pred(0, c), pred(99, c));
  }
}

TEST(MeanRegressor, SerializeRoundTrips) {
  const Problem p = make_problem(50, 0.0, 2);
  MeanRegressor model;
  model.fit(p.x, p.y);
  const MeanRegressor restored = MeanRegressor::deserialize(model.serialize());
  EXPECT_EQ(restored.mean(), model.mean());
}

TEST(MeanRegressor, UnfittedPredictThrows) {
  const MeanRegressor model;
  EXPECT_THROW(model.predict(Matrix(1, 1)), ContractViolation);
}

TEST(Cholesky, SolvesSpdSystem) {
  // A = [[4,2],[2,3]], b = [10, 8] -> x = [1.75, 1.5]
  Matrix a(2, 2, {4, 2, 2, 3});
  Matrix b(2, 1, {10, 8});
  cholesky_solve_in_place(a, b);
  EXPECT_NEAR(b(0, 0), 1.75, 1e-12);
  EXPECT_NEAR(b(1, 0), 1.5, 1e-12);
}

TEST(Cholesky, RejectsIndefinite) {
  Matrix a(2, 2, {1, 2, 2, 1});  // eigenvalues 3, -1
  Matrix b(2, 1, {1, 1});
  EXPECT_THROW(cholesky_solve_in_place(a, b), ContractViolation);
}

TEST(LinearRegressor, RecoversLinearFunction) {
  const Problem p = make_problem(500, 0.0, 3);
  LinearRegressor model;
  model.fit(p.x, p.y);
  // Output 0 is exactly linear: weights 3, -2, 0, intercept 1.
  EXPECT_NEAR(model.weights()(0, 0), 3.0, 1e-6);
  EXPECT_NEAR(model.weights()(1, 0), -2.0, 1e-6);
  EXPECT_NEAR(model.weights()(2, 0), 0.0, 1e-6);
  EXPECT_NEAR(model.weights()(3, 0), 1.0, 1e-6);
  const Matrix pred = model.predict(p.x);
  double max_err = 0.0;
  for (std::size_t r = 0; r < p.x.rows(); ++r) {
    max_err = std::max(max_err, std::abs(pred(r, 0) - p.y(r, 0)));
  }
  EXPECT_LT(max_err, 1e-6);
}

TEST(LinearRegressor, SerializeRoundTrips) {
  const Problem p = make_problem(100, 0.1, 4);
  LinearRegressor model;
  model.fit(p.x, p.y);
  const LinearRegressor restored = LinearRegressor::deserialize(model.serialize());
  const Matrix a = model.predict(p.x);
  const Matrix b = restored.predict(p.x);
  for (std::size_t i = 0; i < a.flat().size(); ++i) {
    EXPECT_DOUBLE_EQ(a.flat()[i], b.flat()[i]);
  }
}

TEST(LinearRegressor, DeserializeRejectsGarbage) {
  EXPECT_THROW(LinearRegressor::deserialize(""), ParseError);
  EXPECT_THROW(LinearRegressor::deserialize("2 2\n1 2\n"), ParseError);
}

// --------------------------------------------------------- decision tree ----

TEST(DecisionTree, FitsStepFunctionExactly) {
  const Problem p = make_problem(400, 0.0, 5);
  DecisionTree tree;
  tree.fit(p.x, p.y);
  const Matrix pred = tree.predict(p.x);
  // Output 1 is a step on x0: a tree should nail it.
  for (std::size_t r = 0; r < p.x.rows(); ++r) {
    EXPECT_NEAR(pred(r, 1), p.y(r, 1), 1e-9);
  }
}

TEST(DecisionTree, RespectsMaxDepth) {
  const Problem p = make_problem(400, 0.0, 6);
  TreeOptions options;
  options.max_depth = 3;
  DecisionTree tree(options);
  tree.fit(p.x, p.y);
  EXPECT_LE(tree.depth(), 3u);
}

TEST(DecisionTree, RespectsMinSamplesLeaf) {
  const Problem p = make_problem(100, 0.5, 7);
  TreeOptions options;
  options.min_samples_leaf = 10;
  DecisionTree tree(options);
  tree.fit(p.x, p.y);
  // Count rows per leaf via prediction paths.
  std::vector<int> count(tree.nodes().size(), 0);
  for (std::size_t r = 0; r < p.x.rows(); ++r) {
    std::size_t i = 0;
    while (!tree.nodes()[i].is_leaf()) {
      const auto& node = tree.nodes()[i];
      i = static_cast<std::size_t>(
          p.x(r, static_cast<std::size_t>(node.feature)) <= node.threshold
              ? node.left
              : node.right);
    }
    count[i]++;
  }
  for (std::size_t i = 0; i < count.size(); ++i) {
    if (tree.nodes()[i].is_leaf()) {
      EXPECT_GE(count[i], 10);
    }
  }
}

TEST(DecisionTree, PredictionsWithinTargetRange) {
  // Regression-tree leaves are means, so predictions stay in [min, max].
  const Problem p = make_problem(300, 1.0, 8);
  DecisionTree tree;
  tree.fit(p.x, p.y);
  double lo = 1e300;
  double hi = -1e300;
  for (const double v : p.y.flat()) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  const Matrix pred = tree.predict(p.x);
  for (const double v : pred.flat()) {
    EXPECT_GE(v, lo - 1e-9);
    EXPECT_LE(v, hi + 1e-9);
  }
}

TEST(DecisionTree, ImportancesIdentifyRelevantFeatures) {
  const Problem p = make_problem(500, 0.0, 9);
  DecisionTree tree;
  tree.fit(p.x, p.y);
  const auto imp = tree.feature_importances();
  ASSERT_TRUE(imp.has_value());
  ASSERT_EQ(imp->size(), 3u);
  EXPECT_NEAR((*imp)[0] + (*imp)[1] + (*imp)[2], 1.0, 1e-9);
  // x2 is irrelevant; x0 drives both outputs.
  EXPECT_GT((*imp)[0], (*imp)[2]);
  EXPECT_LT((*imp)[2], 0.05);
}

TEST(DecisionTree, DeterministicAcrossThreadCounts) {
  const Problem p = make_problem(300, 0.3, 10);
  DecisionTree serial;
  serial.fit(p.x, p.y, nullptr);
  ThreadPool pool(4);
  DecisionTree parallel;
  parallel.fit(p.x, p.y, &pool);
  const Matrix a = serial.predict(p.x);
  const Matrix b = parallel.predict(p.x);
  for (std::size_t i = 0; i < a.flat().size(); ++i) EXPECT_EQ(a.flat()[i], b.flat()[i]);
}

TEST(DecisionTree, FitRowsSubset) {
  const Problem p = make_problem(200, 0.0, 11);
  std::vector<std::size_t> rows;
  for (std::size_t r = 0; r < 100; ++r) rows.push_back(r);
  DecisionTree tree;
  tree.fit_rows(p.x, p.y, rows);
  EXPECT_TRUE(tree.fitted());
}

// ---------------------------------------------------------------- forest ----

TEST(RandomForest, BeatsSingleTreeOnNoisyData) {
  const Problem train = make_problem(600, 2.0, 12);
  const Problem test = make_problem(200, 0.0, 13);  // noise-free ground truth
  TreeOptions tree_options;
  DecisionTree tree(tree_options);
  tree.fit(train.x, train.y);
  ForestOptions forest_options;
  forest_options.n_trees = 50;
  RandomForest forest(forest_options);
  forest.fit(train.x, train.y);
  const double tree_mae = mean_absolute_error(test.y, tree.predict(test.x));
  const double forest_mae = mean_absolute_error(test.y, forest.predict(test.x));
  EXPECT_LT(forest_mae, tree_mae);
}

TEST(RandomForest, DeterministicAcrossThreadCounts) {
  const Problem p = make_problem(200, 0.5, 14);
  ForestOptions options;
  options.n_trees = 10;
  RandomForest serial(options);
  serial.fit(p.x, p.y, nullptr);
  ThreadPool pool(3);
  RandomForest parallel(options);
  parallel.fit(p.x, p.y, &pool);
  const Matrix a = serial.predict(p.x);
  const Matrix b = parallel.predict(p.x);
  for (std::size_t i = 0; i < a.flat().size(); ++i) EXPECT_EQ(a.flat()[i], b.flat()[i]);
}

TEST(RandomForest, ImportancesNormalized) {
  const Problem p = make_problem(300, 0.2, 15);
  ForestOptions options;
  options.n_trees = 20;
  RandomForest forest(options);
  forest.fit(p.x, p.y);
  const auto imp = forest.feature_importances();
  ASSERT_TRUE(imp.has_value());
  double sum = 0.0;
  for (const double v : *imp) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

// ------------------------------------------------------------------- gbt ----

GbtOptions small_gbt() {
  GbtOptions o;
  o.n_rounds = 40;
  o.max_depth = 4;
  return o;
}

TEST(Gbt, FitsLinearFunction) {
  const Problem p = make_problem(500, 0.0, 16);
  GbtRegressor model(small_gbt());
  model.fit(p.x, p.y);
  const double mae = mean_absolute_error(p.y, model.predict(p.x));
  EXPECT_LT(mae, 0.15);
}

TEST(Gbt, MoreRoundsFitBetter) {
  const Problem p = make_problem(400, 0.0, 17);
  GbtOptions few = small_gbt();
  few.n_rounds = 5;
  GbtOptions many = small_gbt();
  many.n_rounds = 80;
  GbtRegressor a(few);
  a.fit(p.x, p.y);
  GbtRegressor b(many);
  b.fit(p.x, p.y);
  EXPECT_LT(mean_absolute_error(p.y, b.predict(p.x)),
            mean_absolute_error(p.y, a.predict(p.x)));
}

TEST(Gbt, PseudoHuberObjectiveAlsoFits) {
  const Problem p = make_problem(400, 0.0, 18);
  GbtOptions options = small_gbt();
  options.objective = GbtObjective::kPseudoHuber;
  options.huber_delta = 1.0;
  options.n_rounds = 120;
  GbtRegressor model(options);
  model.fit(p.x, p.y);
  EXPECT_LT(mean_absolute_error(p.y, model.predict(p.x)), 0.3);
}

TEST(Gbt, ImportancesFavorRelevantFeatures) {
  const Problem p = make_problem(500, 0.0, 19);
  GbtRegressor model(small_gbt());
  model.fit(p.x, p.y);
  const auto imp = model.feature_importances();
  ASSERT_TRUE(imp.has_value());
  EXPECT_GT((*imp)[0], (*imp)[2]);
  EXPECT_GT((*imp)[1], (*imp)[2]);
}

TEST(Gbt, SerializeRoundTripsPredictions) {
  const Problem p = make_problem(300, 0.2, 20);
  GbtRegressor model(small_gbt());
  model.fit(p.x, p.y);
  const GbtRegressor restored = GbtRegressor::deserialize(model.serialize());
  const Matrix a = model.predict(p.x);
  const Matrix b = restored.predict(p.x);
  for (std::size_t i = 0; i < a.flat().size(); ++i) {
    EXPECT_DOUBLE_EQ(a.flat()[i], b.flat()[i]);
  }
  // Importances survive the round trip too.
  EXPECT_EQ(*restored.feature_importances(), *model.feature_importances());
}

TEST(Gbt, DeserializeRejectsGarbage) {
  EXPECT_THROW(GbtRegressor::deserialize(""), ParseError);
  EXPECT_THROW(GbtRegressor::deserialize("not-a-model 1 2\n"), ParseError);
}

TEST(Gbt, DeterministicAcrossThreadCounts) {
  const Problem p = make_problem(250, 0.4, 21);
  // Exact mode; the histogram default has its own 1/2/8-thread test below.
  GbtOptions options = small_gbt();
  options.tree_method = GbtTreeMethod::kExact;
  GbtRegressor serial(options);
  serial.fit(p.x, p.y, nullptr);
  ThreadPool pool(4);
  GbtRegressor parallel(options);
  parallel.fit(p.x, p.y, &pool);
  const Matrix a = serial.predict(p.x);
  const Matrix b = parallel.predict(p.x);
  for (std::size_t i = 0; i < a.flat().size(); ++i) EXPECT_EQ(a.flat()[i], b.flat()[i]);
}

TEST(Gbt, PredictRejectsWrongFeatureCount) {
  const Problem p = make_problem(100, 0.0, 22);
  GbtRegressor model(small_gbt());
  model.fit(p.x, p.y);
  EXPECT_THROW(model.predict(Matrix(5, 2)), ContractViolation);
}

TEST(Gbt, RejectsInvalidOptions) {
  GbtOptions bad = small_gbt();
  bad.subsample = 0.0;
  GbtRegressor model(bad);
  const Problem p = make_problem(50, 0.0, 23);
  EXPECT_THROW(model.fit(p.x, p.y), ContractViolation);
}

TEST(Gbt, RejectsInvalidMaxBins) {
  GbtOptions bad = small_gbt();
  bad.tree_method = GbtTreeMethod::kHist;
  bad.max_bins = 1;
  GbtRegressor model(bad);
  const Problem p = make_problem(50, 0.0, 23);
  EXPECT_THROW(model.fit(p.x, p.y), ContractViolation);
}

TEST(Gbt, ResolveMaxBinsAutoScalesWithRows) {
  // 0 is the auto sentinel: clamp(rows / 64, 32, kMaxBins).
  EXPECT_EQ(resolve_max_bins(0, 100), 32);       // small data -> floor
  EXPECT_EQ(resolve_max_bins(0, 64 * 100), 100); // scales linearly
  EXPECT_EQ(resolve_max_bins(0, 1'000'000), BinnedMatrix::kMaxBins);
  // A configured value passes through untouched.
  EXPECT_EQ(resolve_max_bins(64, 10), 64);
  EXPECT_EQ(resolve_max_bins(200, 1'000'000), 200);
}

TEST(Gbt, AutoMaxBinsFitsAndRoundTrips) {
  const Problem p = make_problem(300, 0.2, 24);
  GbtOptions options = small_gbt();
  options.tree_method = GbtTreeMethod::kHist;
  options.max_bins = 0;  // auto
  GbtRegressor model(options);
  model.fit(p.x, p.y);
  EXPECT_LT(mean_absolute_error(p.y, model.predict(p.x)), 0.3);
  // Serialization keeps the sentinel and the restored model predicts
  // identically.
  const GbtRegressor restored = GbtRegressor::deserialize(model.serialize());
  EXPECT_EQ(restored.options().max_bins, 0);
  const Matrix a = model.predict(p.x);
  const Matrix b = restored.predict(p.x);
  for (std::size_t i = 0; i < a.flat().size(); ++i) EXPECT_EQ(a.flat()[i], b.flat()[i]);
}

// ------------------------------------------------------ gbt: resumability ----

TEST(Gbt, ResumedFitIsBitIdenticalToStraightFit) {
  // Interrupt-and-resume must reproduce the uninterrupted model exactly:
  // serialize a checkpoint mid-fit, reload it, continue, and compare the
  // final serialized bytes. Row/column sampling is active so the RNG
  // burn-in on resume is exercised too.
  const Problem p = make_problem(300, 0.2, 25);
  GbtOptions options = small_gbt();
  options.subsample = 0.8;
  options.colsample = 0.8;

  GbtRegressor straight(options);
  straight.fit(p.x, p.y);

  std::string checkpoint_text;
  GbtRegressor first(options);
  first.fit_resumable(p.x, p.y, /*checkpoint_every=*/7, [&](int rounds_done) {
    if (rounds_done == 21) checkpoint_text = first.serialize();
  });
  ASSERT_FALSE(checkpoint_text.empty());
  // Checkpointing itself must not perturb the fit.
  EXPECT_EQ(first.serialize(), straight.serialize());

  GbtRegressor resumed = GbtRegressor::deserialize(checkpoint_text);
  EXPECT_EQ(resumed.rounds_completed(), 21);
  resumed.set_options(options);  // deserialize round-trips them, but be explicit
  ThreadPool pool(4);            // continuation under a pool stays identical
  resumed.fit_resumable(p.x, p.y, 0, nullptr, &pool);
  EXPECT_EQ(resumed.rounds_completed(), options.n_rounds);
  EXPECT_EQ(resumed.serialize(), straight.serialize());
}

TEST(Gbt, ResumeRejectsMismatchedShape) {
  const Problem p = make_problem(200, 0.0, 26);
  GbtOptions options = small_gbt();
  GbtRegressor model(options);
  std::string checkpoint_text;
  model.fit_resumable(p.x, p.y, 10, [&](int rounds_done) {
    if (checkpoint_text.empty() && rounds_done >= 10) {
      checkpoint_text = model.serialize();
    }
  });
  ASSERT_FALSE(checkpoint_text.empty());
  GbtRegressor resumed = GbtRegressor::deserialize(checkpoint_text);
  const Problem other = make_problem(200, 0.0, 27);
  Matrix narrow(other.x.rows(), 2);  // wrong feature count
  EXPECT_THROW(resumed.fit_resumable(narrow, other.y, 0, nullptr),
               ContractViolation);
}

// ------------------------------------------------------ gbt: warm start ----

TEST(Gbt, WarmStartGrowsRoundsAndImproves) {
  const Problem p = make_problem(400, 0.1, 28);
  GbtOptions options = small_gbt();
  options.n_rounds = 10;  // deliberately underfit
  GbtRegressor model(options);
  model.fit(p.x, p.y);
  const double before = mean_absolute_error(p.y, model.predict(p.x));

  model.warm_start_fit(p.x, p.y, /*extra_rounds=*/60);
  EXPECT_EQ(model.rounds_completed(), 70);
  EXPECT_EQ(model.options().n_rounds, 70);
  const double after = mean_absolute_error(p.y, model.predict(p.x));
  EXPECT_LT(after, before);
}

TEST(Gbt, WarmStartKeepsBaseScoreFixed) {
  // The stored trees were built against the original base score, so a
  // warm start on a window with a very different target mean must not
  // move it: only new trees absorb the shift.
  const Problem p = make_problem(300, 0.0, 29);
  GbtOptions options = small_gbt();
  options.n_rounds = 8;
  GbtRegressor model(options);
  model.fit(p.x, p.y);
  const std::string before = model.serialize();

  Matrix shifted_y = p.y;
  for (double& v : shifted_y.flat()) v += 100.0;
  model.warm_start_fit(p.x, shifted_y, 4);

  // The serialized header carries the base scores; extract both and
  // compare (the first line after the per-output header is stable), by
  // checking the old prefix is untouched in spirit: predictions on the
  // original data move toward the shifted targets only via new trees.
  const GbtRegressor original = GbtRegressor::deserialize(before);
  const Matrix base_preds = original.predict(p.x);
  const Matrix warm_preds = model.predict(p.x);
  for (std::size_t i = 0; i < base_preds.flat().size(); ++i) {
    // New trees push predictions up toward +100; the direction proves the
    // shift went through trees, not through a recomputed base score.
    EXPECT_GT(warm_preds.flat()[i], base_preds.flat()[i]);
  }
}

TEST(Gbt, WarmStartIsDeterministicPerGeneration) {
  const Problem p = make_problem(250, 0.2, 30);
  GbtOptions options = small_gbt();
  options.n_rounds = 12;
  options.subsample = 0.8;

  const auto run = [&](ThreadPool* pool) {
    GbtRegressor model(options);
    model.fit(p.x, p.y);
    model.warm_start_fit(p.x, p.y, 6, pool);   // generation 1
    model.warm_start_fit(p.x, p.y, 6, pool);   // generation 2
    return model.serialize();
  };
  ThreadPool pool(4);
  const std::string serial = run(nullptr);
  EXPECT_EQ(serial, run(&pool));  // pool-independent

  // Each generation draws a fresh RNG stream: two warm starts from the
  // same state with different completed-round counts must differ.
  GbtRegressor model(options);
  model.fit(p.x, p.y);
  model.warm_start_fit(p.x, p.y, 12);
  EXPECT_NE(model.serialize(), serial);
}

TEST(Gbt, WarmStartRejectsUnfittedAndBadShapes) {
  const Problem p = make_problem(100, 0.0, 31);
  GbtRegressor unfitted(small_gbt());
  EXPECT_THROW(unfitted.warm_start_fit(p.x, p.y, 5), ContractViolation);

  GbtRegressor model(small_gbt());
  model.fit(p.x, p.y);
  EXPECT_THROW(model.warm_start_fit(p.x, p.y, 0), ContractViolation);
  Matrix narrow(p.x.rows(), 2);
  EXPECT_THROW(model.warm_start_fit(narrow, p.y, 5), ContractViolation);
}

// --------------------------------------------------- gbt: hist vs exact ----

GbtOptions gbt_with(GbtTreeMethod method) {
  GbtOptions o = small_gbt();
  o.tree_method = method;
  return o;
}

// Mirrors the counter-dataset regime the histogram method targets: the
// discontinuous target sits on a low-cardinality feature (lossless to
// bin), while the smooth targets ride on continuous features where
// quantile quantization only perturbs thresholds slightly. A step target
// on a continuous feature is deliberately excluded — a bin-width sliver
// next to the step takes the full jump as error, which is an inherent
// histogram-method property, not a parity bug.
Problem make_binnable_problem(std::size_t n, double noise, std::uint64_t seed) {
  Rng rng(seed);
  Matrix x(n, 3);
  Matrix y(n, 2);
  for (std::size_t r = 0; r < n; ++r) {
    const double x0 = std::floor(rng.uniform() * 40.0) / 40.0;  // 40 levels
    const double x1 = rng.uniform();
    x(r, 0) = x0;
    x(r, 1) = x1;
    x(r, 2) = rng.uniform();  // irrelevant feature
    y(r, 0) = 3.0 * x0 - 2.0 * x1 + 1.0 + noise * (rng.uniform() - 0.5);
    y(r, 1) = (x0 > 0.5 ? 4.0 : 0.0) + noise * (rng.uniform() - 0.5);
  }
  return {std::move(x), std::move(y)};
}

TEST(Gbt, HistMatchesExactAccuracy) {
  const Problem train = make_binnable_problem(600, 0.1, 26);
  const Problem test = make_binnable_problem(250, 0.1, 27);
  GbtRegressor exact(gbt_with(GbtTreeMethod::kExact));
  exact.fit(train.x, train.y);
  GbtRegressor hist(gbt_with(GbtTreeMethod::kHist));
  hist.fit(train.x, train.y);

  const Matrix pe = exact.predict(test.x);
  const Matrix ph = hist.predict(test.x);
  const double rmse_e = root_mean_squared_error(test.y, pe);
  const double rmse_h = root_mean_squared_error(test.y, ph);
  EXPECT_LT(std::abs(rmse_h - rmse_e), 0.02 * rmse_e);
  const double r2_e = r2_score(test.y, pe);
  const double r2_h = r2_score(test.y, ph);
  EXPECT_LT(std::abs(r2_h - r2_e), 0.02 * std::abs(r2_e));
}

TEST(Gbt, HistSerializeRoundTripsPredictionsAndOptions) {
  const Problem p = make_problem(300, 0.2, 28);
  GbtOptions options = gbt_with(GbtTreeMethod::kHist);
  options.max_bins = 32;
  GbtRegressor model(options);
  model.fit(p.x, p.y);
  const GbtRegressor restored = GbtRegressor::deserialize(model.serialize());
  EXPECT_EQ(restored.options().tree_method, GbtTreeMethod::kHist);
  EXPECT_EQ(restored.options().max_bins, 32);
  const Matrix a = model.predict(p.x);
  const Matrix b = restored.predict(p.x);
  for (std::size_t i = 0; i < a.flat().size(); ++i) {
    EXPECT_DOUBLE_EQ(a.flat()[i], b.flat()[i]);
  }
}

TEST(Gbt, HistDeterministicAcrossThreadCounts) {
  const Problem p = make_problem(250, 0.4, 29);
  const GbtOptions options = gbt_with(GbtTreeMethod::kHist);
  GbtRegressor serial(options);
  serial.fit(p.x, p.y, nullptr);
  const Matrix a = serial.predict(p.x);
  for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    ThreadPool pool(threads);
    GbtRegressor parallel(options);
    parallel.fit(p.x, p.y, &pool);
    const Matrix b = parallel.predict(p.x);
    for (std::size_t i = 0; i < a.flat().size(); ++i) {
      EXPECT_EQ(a.flat()[i], b.flat()[i]) << "threads=" << threads;
    }
  }
}

// ----------------------------------------------- gbt: corrupt model text ----

// Minimal well-formed model text (1 output, 2 features, one 3-node tree)
// whose nodes block the corruption tests below replace.
std::string model_text(const std::string& tree_block) {
  return "gbt 1 2\n"
         "method hist 64\n"
         "base 0\n"
         "importance_gain 0 0\n"
         "importance_count 0 0\n" +
         tree_block;
}

const char kGoodTree[] =
    "tree 0 3\n"
    "0 0.5 1 2 0\n"
    "-1 0 -1 -1 0.25\n"
    "-1 0 -1 -1 -0.25\n";

TEST(Gbt, DeserializeAcceptsMinimalModel) {
  const GbtRegressor model = GbtRegressor::deserialize(model_text(kGoodTree));
  EXPECT_TRUE(model.fitted());
  Matrix x(1, 2);
  x(0, 0) = 0.0;
  EXPECT_DOUBLE_EQ(model.predict(x)(0, 0), 0.25);
}

TEST(Gbt, DeserializeRejectsFeatureOutOfRange) {
  const std::string bad = model_text(
      "tree 0 3\n"
      "7 0.5 1 2 0\n"  // feature 7 but the model has 2 features
      "-1 0 -1 -1 0.25\n"
      "-1 0 -1 -1 -0.25\n");
  EXPECT_THROW(GbtRegressor::deserialize(bad), ParseError);
}

TEST(Gbt, DeserializeRejectsBackwardChildLink) {
  const std::string bad = model_text(
      "tree 0 3\n"
      "0 0.5 1 2 0\n"
      "1 0.5 0 2 0\n"  // left points back at the root: a cycle
      "-1 0 -1 -1 -0.25\n");
  EXPECT_THROW(GbtRegressor::deserialize(bad), ParseError);
}

TEST(Gbt, DeserializeRejectsChildIndexOutOfRange) {
  const std::string bad = model_text(
      "tree 0 3\n"
      "0 0.5 1 9 0\n"  // right child 9 in a 3-node tree
      "-1 0 -1 -1 0.25\n"
      "-1 0 -1 -1 -0.25\n");
  EXPECT_THROW(GbtRegressor::deserialize(bad), ParseError);
}

TEST(Gbt, DeserializeRejectsLeafWithChildren) {
  const std::string bad = model_text(
      "tree 0 3\n"
      "0 0.5 1 2 0\n"
      "-1 0 1 2 0.25\n"  // leaf (feature -1) carrying child links
      "-1 0 -1 -1 -0.25\n");
  EXPECT_THROW(GbtRegressor::deserialize(bad), ParseError);
}

TEST(Gbt, DeserializeRejectsBadTreeNodeCount) {
  // Zero nodes and a count larger than the remaining input both fail
  // before any allocation happens.
  EXPECT_THROW(GbtRegressor::deserialize(model_text("tree 0 0\n")), ParseError);
  EXPECT_THROW(GbtRegressor::deserialize(model_text("tree 0 999999999\n"
                                                    "-1 0 -1 -1 0\n")),
               ParseError);
}

TEST(Gbt, DeserializeRejectsTruncatedNodes) {
  const std::string bad = model_text(
      "tree 0 3\n"
      "0 0.5 1 2 0\n"
      "-1 0 -1 -1 0.25\n");  // header promises 3 nodes, only 2 present
  EXPECT_THROW(GbtRegressor::deserialize(bad), ParseError);
}

TEST(Gbt, DeserializeRejectsBadMethodLine) {
  auto with_method = [](const std::string& method_line) {
    return "gbt 1 2\n" + method_line +
           "base 0\n"
           "importance_gain 0 0\n"
           "importance_count 0 0\n" +
           std::string(kGoodTree);
  };
  EXPECT_THROW(GbtRegressor::deserialize(with_method("method sketchy 64\n")),
               ParseError);
  EXPECT_THROW(GbtRegressor::deserialize(with_method("method hist 1\n")),
               ParseError);
  EXPECT_THROW(GbtRegressor::deserialize(with_method("method hist 9999\n")),
               ParseError);
  // Models serialized before the method line existed still load.
  const GbtRegressor legacy = GbtRegressor::deserialize(with_method(""));
  EXPECT_TRUE(legacy.fitted());
}

TEST(Gbt, DeserializeRejectsTreeForUnknownOutput) {
  const std::string bad = model_text(
      "tree 4 3\n"  // output 4 but the model has 1 output
      "0 0.5 1 2 0\n"
      "-1 0 -1 -1 0.25\n"
      "-1 0 -1 -1 -0.25\n");
  EXPECT_THROW(GbtRegressor::deserialize(bad), ParseError);
}

// --------------------------------------------- tree/forest: hist vs exact ----

// Like make_binnable_problem, but every feature is low-cardinality: with
// bins >= levels the quantile binning is lossless, which is the regime
// where a *single* tree (no ensemble averaging to absorb a shifted early
// split) can honestly promise near-exact accuracy.
Problem make_discrete_problem(std::size_t n, double noise, std::uint64_t seed) {
  Rng rng(seed);
  Matrix x(n, 3);
  Matrix y(n, 2);
  for (std::size_t r = 0; r < n; ++r) {
    const double x0 = std::floor(rng.uniform() * 40.0) / 40.0;
    const double x1 = std::floor(rng.uniform() * 40.0) / 40.0;
    x(r, 0) = x0;
    x(r, 1) = x1;
    x(r, 2) = std::floor(rng.uniform() * 40.0) / 40.0;  // irrelevant feature
    y(r, 0) = 3.0 * x0 - 2.0 * x1 + 1.0 + noise * (rng.uniform() - 0.5);
    y(r, 1) = (x0 > 0.5 ? 4.0 : 0.0) + noise * (rng.uniform() - 0.5);
  }
  return {std::move(x), std::move(y)};
}

TEST(DecisionTree, HistMatchesExactAccuracy) {
  const Problem train = make_discrete_problem(800, 0.1, 40);
  const Problem test = make_discrete_problem(300, 0.1, 41);
  TreeOptions options;
  options.max_depth = 8;
  options.max_bins = 64;  // >= the 40 feature levels: lossless binning
  DecisionTree exact(options);
  exact.fit(train.x, train.y);
  options.method = TreeMethod::kHist;
  DecisionTree hist(options);
  hist.fit(train.x, train.y);
  const double rmse_e = root_mean_squared_error(test.y, exact.predict(test.x));
  const double rmse_h = root_mean_squared_error(test.y, hist.predict(test.x));
  EXPECT_LT(std::abs(rmse_h - rmse_e), 0.02 * rmse_e);
}

TEST(DecisionTree, HistDeterministicAcrossThreadCounts) {
  const Problem p = make_problem(300, 0.3, 42);
  TreeOptions options;
  options.method = TreeMethod::kHist;
  DecisionTree serial(options);
  serial.fit(p.x, p.y, nullptr);
  const Matrix a = serial.predict(p.x);
  for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    ThreadPool pool(threads);
    DecisionTree parallel(options);
    parallel.fit(p.x, p.y, &pool);
    const Matrix b = parallel.predict(p.x);
    for (std::size_t i = 0; i < a.flat().size(); ++i) {
      EXPECT_EQ(a.flat()[i], b.flat()[i]) << "threads=" << threads;
    }
  }
}

TEST(RandomForest, HistMatchesExactAccuracy) {
  const Problem train = make_binnable_problem(800, 0.1, 43);
  const Problem test = make_binnable_problem(300, 0.1, 44);
  ForestOptions options;
  options.n_trees = 30;
  RandomForest exact(options);
  exact.fit(train.x, train.y);
  options.method = TreeMethod::kHist;
  RandomForest hist(options);
  hist.fit(train.x, train.y);
  const double rmse_e = root_mean_squared_error(test.y, exact.predict(test.x));
  const double rmse_h = root_mean_squared_error(test.y, hist.predict(test.x));
  EXPECT_LT(std::abs(rmse_h - rmse_e), 0.02 * rmse_e);
}

TEST(RandomForest, HistDeterministicAcrossThreadCounts) {
  const Problem p = make_problem(300, 0.3, 45);
  ForestOptions options;
  options.n_trees = 12;
  options.method = TreeMethod::kHist;
  RandomForest serial(options);
  serial.fit(p.x, p.y, nullptr);
  const Matrix a = serial.predict(p.x);
  for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    ThreadPool pool(threads);
    RandomForest parallel(options);
    parallel.fit(p.x, p.y, &pool);
    const Matrix b = parallel.predict(p.x);
    for (std::size_t i = 0; i < a.flat().size(); ++i) {
      EXPECT_EQ(a.flat()[i], b.flat()[i]) << "threads=" << threads;
    }
  }
}

// ------------------------------------------------ compiled ensemble parity ----

void expect_matrices_identical(const Matrix& a, const Matrix& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (std::size_t i = 0; i < a.flat().size(); ++i) {
    EXPECT_EQ(a.flat()[i], b.flat()[i]) << "flat index " << i;
  }
}

/// predict_row must agree bit-for-bit with the reference predictions too.
void expect_row_parity(const CompiledEnsemble& compiled, const Matrix& x,
                       const Matrix& reference) {
  std::vector<double> row(compiled.n_outputs());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    compiled.predict_row(x.row(r), row);
    for (std::size_t k = 0; k < row.size(); ++k) {
      EXPECT_EQ(row[k], reference(r, k)) << "row " << r << " output " << k;
    }
  }
}

TEST(CompiledParity, GbtExactBitIdentical) {
  const Problem p = make_problem(300, 0.3, 50);
  GbtRegressor model(gbt_with(GbtTreeMethod::kExact));
  model.fit(p.x, p.y);
  const auto compiled = CompiledEnsemble::compile(model);
  const Matrix reference = model.predict(p.x);
  expect_matrices_identical(compiled.predict(p.x), reference);
  expect_row_parity(compiled, p.x, reference);
}

TEST(CompiledParity, GbtHistBitIdentical) {
  const Problem p = make_problem(300, 0.3, 51);
  GbtRegressor model(gbt_with(GbtTreeMethod::kHist));
  model.fit(p.x, p.y);
  const auto compiled = CompiledEnsemble::compile(model);
  expect_matrices_identical(compiled.predict(p.x), model.predict(p.x));
}

TEST(CompiledParity, RandomForestBitIdentical) {
  const Problem p = make_problem(300, 0.3, 52);
  for (const TreeMethod method : {TreeMethod::kExact, TreeMethod::kHist}) {
    ForestOptions options;
    options.n_trees = 15;
    options.method = method;
    RandomForest model(options);
    model.fit(p.x, p.y);
    const auto compiled = CompiledEnsemble::compile(model);
    const Matrix reference = model.predict(p.x);
    expect_matrices_identical(compiled.predict(p.x), reference);
    expect_row_parity(compiled, p.x, reference);
  }
}

TEST(CompiledParity, DecisionTreeBitIdentical) {
  const Problem p = make_problem(300, 0.3, 53);
  DecisionTree model;
  model.fit(p.x, p.y);
  const auto compiled = CompiledEnsemble::compile(model);
  const Matrix reference = model.predict(p.x);
  expect_matrices_identical(compiled.predict(p.x), reference);
  expect_row_parity(compiled, p.x, reference);
}

TEST(CompiledParity, StumpBitIdentical) {
  const Problem p = make_problem(200, 0.3, 54);
  TreeOptions options;
  options.max_depth = 1;  // a single split: root plus two leaves
  DecisionTree model(options);
  model.fit(p.x, p.y);
  const auto compiled = CompiledEnsemble::compile(model);
  expect_matrices_identical(compiled.predict(p.x), model.predict(p.x));
}

TEST(CompiledParity, SingleLeafConstantTargetBitIdentical) {
  // A constant target collapses every tree to one leaf (walk length 0).
  const Problem base = make_problem(100, 0.0, 55);
  Matrix y(base.y.rows(), base.y.cols());
  for (double& v : y.flat()) v = 2.75;
  DecisionTree tree;
  tree.fit(base.x, y);
  expect_matrices_identical(CompiledEnsemble::compile(tree).predict(base.x),
                            tree.predict(base.x));
  GbtRegressor gbt(small_gbt());
  gbt.fit(base.x, y);
  expect_matrices_identical(CompiledEnsemble::compile(gbt).predict(base.x),
                            gbt.predict(base.x));
}

TEST(CompiledParity, SerializedModelRecompilesIdentically) {
  const Problem p = make_problem(300, 0.3, 56);
  GbtRegressor model(gbt_with(GbtTreeMethod::kHist));
  model.fit(p.x, p.y);
  const GbtRegressor restored = GbtRegressor::deserialize(model.serialize());
  expect_matrices_identical(CompiledEnsemble::compile(restored).predict(p.x),
                            CompiledEnsemble::compile(model).predict(p.x));
}

TEST(CompiledParity, DeterministicAcrossThreadCounts) {
  const Problem p = make_problem(700, 0.3, 57);
  GbtRegressor model(small_gbt());
  model.fit(p.x, p.y);
  const auto compiled = CompiledEnsemble::compile(model);
  const Matrix reference = model.predict(p.x);
  expect_matrices_identical(compiled.predict(p.x, nullptr), reference);
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    ThreadPool pool(threads);
    expect_matrices_identical(compiled.predict(p.x, &pool), reference);
  }
}

// ---------------------------------------------- quantized bin-code parity ----
//
// The quantized engine gates on two properties (the exact engine keeps its
// bit-identity gate above): quantized-vs-exact RMSE within 1% of the
// prediction scale on arbitrary rows, and bit-identity on rows whose
// feature values sit exactly on (or adjacent to) the fitted cut values.
// The current cut-table scheme is lossless, so it passes both trivially;
// the tests assert only the contract so a future lossy quantizer (e.g.
// coarser re-binning) still has a green gate to hit.

/// RMS magnitude of a prediction matrix, the scale for the 1% RMSE gate.
double rms_scale(const Matrix& m) {
  return root_mean_squared_error(m, Matrix(m.rows(), m.cols()));
}

void expect_rmse_parity(const Matrix& exact, const Matrix& quantized) {
  ASSERT_EQ(exact.rows(), quantized.rows());
  ASSERT_EQ(exact.cols(), quantized.cols());
  EXPECT_LE(root_mean_squared_error(exact, quantized),
            0.01 * rms_scale(exact) + 1e-12);
}

TEST(QuantizedParity, GbtHistQuantizedEngineServes) {
  const Problem p = make_problem(300, 0.3, 60);
  GbtRegressor model(gbt_with(GbtTreeMethod::kHist));
  model.fit(p.x, p.y);
  const auto quantized = CompiledEnsemble::compile(model, {.quantize = true});
  ASSERT_TRUE(quantized.quantized());
  EXPECT_TRUE(quantized.quantize_note().empty());
  const auto exact = CompiledEnsemble::compile(model);
  EXPECT_FALSE(exact.quantized());
  const Problem held = make_problem(200, 0.3, 61);
  expect_rmse_parity(exact.predict(held.x), quantized.predict(held.x));
  expect_row_parity(quantized, held.x, quantized.predict(held.x));
}

TEST(QuantizedParity, FuzzRandomEnsemblesRandomRows) {
  // Random ensembles x random rows (deliberately outside the training
  // range): the RMSE-parity gate must hold for every shape.
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    GbtOptions options = small_gbt();
    options.n_rounds = 8 + static_cast<int>(seed) * 11;
    options.max_depth = 2 + static_cast<int>(seed % 4);
    options.tree_method =
        seed % 2 == 0 ? GbtTreeMethod::kHist : GbtTreeMethod::kExact;
    const Problem p = make_problem(250, 0.4, 62 + seed);
    GbtRegressor model(options);
    model.fit(p.x, p.y);
    Rng rng(100 + seed);
    Matrix rows(150, 3);
    for (double& v : rows.flat()) v = -0.5 + 2.0 * rng.uniform();
    const auto exact = CompiledEnsemble::compile(model);
    const auto quantized = CompiledEnsemble::compile(model, {.quantize = true});
    if (options.tree_method == GbtTreeMethod::kHist) {
      // Hist training draws every threshold from <= max_bins bin edges,
      // so the quantized pool must always be available. Exact training
      // mints fresh midpoints every round and may legitimately overflow
      // the uint8 cut range — then the exact pool serves and the parity
      // check below still must hold.
      ASSERT_TRUE(quantized.quantized()) << quantized.quantize_note();
    }
    expect_rmse_parity(exact.predict(rows), quantized.predict(rows));
  }
}

TEST(QuantizedParity, BinRepresentativeRowsBitIdentical) {
  // Rows whose feature values are the fitted thresholds themselves (and
  // their immediate double neighbours — the hardest boundary cases) must
  // predict bit-identically to the exact engine.
  const Problem p = make_problem(300, 0.3, 64);
  GbtRegressor model(gbt_with(GbtTreeMethod::kHist));
  model.fit(p.x, p.y);
  std::vector<double> base(p.x.row(0).begin(), p.x.row(0).end());
  std::vector<double> flat;
  for (std::size_t k = 0; k < model.n_outputs(); ++k) {
    for (const GbtTree& tree : model.ensemble(k)) {
      for (const GbtNode& node : tree.nodes) {
        if (node.is_leaf()) continue;
        for (const double v :
             {node.threshold,
              std::nextafter(node.threshold, -std::numeric_limits<double>::infinity()),
              std::nextafter(node.threshold, std::numeric_limits<double>::infinity())}) {
          std::vector<double> row = base;
          row[static_cast<std::size_t>(node.feature)] = v;
          flat.insert(flat.end(), row.begin(), row.end());
        }
      }
    }
  }
  const std::size_t n_rows = flat.size() / 3;
  const Matrix rows(n_rows, 3, std::move(flat));
  const auto exact = CompiledEnsemble::compile(model);
  const auto quantized = CompiledEnsemble::compile(model, {.quantize = true});
  ASSERT_TRUE(quantized.quantized());
  expect_matrices_identical(exact.predict(rows), quantized.predict(rows));
}

TEST(QuantizedParity, DeterministicAcrossThreadCounts) {
  const Problem p = make_problem(700, 0.3, 65);
  GbtRegressor model(gbt_with(GbtTreeMethod::kHist));
  model.fit(p.x, p.y);
  const auto quantized = CompiledEnsemble::compile(model, {.quantize = true});
  ASSERT_TRUE(quantized.quantized());
  const Matrix reference = quantized.predict(p.x, nullptr);
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    ThreadPool pool(threads);
    expect_matrices_identical(quantized.predict(p.x, &pool), reference);
  }
}

TEST(QuantizedParity, SerializedModelRecompilesQuantizedIdentically) {
  const Problem p = make_problem(300, 0.3, 66);
  GbtRegressor model(gbt_with(GbtTreeMethod::kHist));
  model.fit(p.x, p.y);
  const GbtRegressor restored = GbtRegressor::deserialize(model.serialize());
  const auto a = CompiledEnsemble::compile(model, {.quantize = true});
  const auto b = CompiledEnsemble::compile(restored, {.quantize = true});
  ASSERT_TRUE(a.quantized());
  ASSERT_TRUE(b.quantized());
  expect_matrices_identical(a.predict(p.x), b.predict(p.x));
}

TEST(QuantizedParity, RowScratchReuseMatchesBatch) {
  const Problem p = make_problem(200, 0.3, 67);
  GbtRegressor model(gbt_with(GbtTreeMethod::kHist));
  model.fit(p.x, p.y);
  const auto quantized = CompiledEnsemble::compile(model, {.quantize = true});
  ASSERT_TRUE(quantized.quantized());
  const Matrix batch = quantized.predict(p.x);
  CompiledEnsemble::RowScratch scratch;  // reused across every row
  std::vector<double> out(quantized.n_outputs());
  for (std::size_t r = 0; r < p.x.rows(); ++r) {
    quantized.predict_row(p.x.row(r), out, scratch);
    for (std::size_t k = 0; k < out.size(); ++k) {
      EXPECT_EQ(out[k], batch(r, k)) << "row " << r << " output " << k;
    }
  }
}

TEST(QuantizedParity, DegenerateModels) {
  // Stump: a single split.
  const Problem p = make_problem(200, 0.3, 68);
  TreeOptions stump_options;
  stump_options.max_depth = 1;
  DecisionTree stump(stump_options);
  stump.fit(p.x, p.y);
  const auto qstump = CompiledEnsemble::compile(stump, {.quantize = true});
  ASSERT_TRUE(qstump.quantized());
  expect_matrices_identical(qstump.predict(p.x), stump.predict(p.x));

  // Single leaf: a constant target collapses every tree (walk length 0).
  Matrix constant_y(p.y.rows(), p.y.cols());
  for (double& v : constant_y.flat()) v = 2.75;
  GbtRegressor leaf_gbt(small_gbt());
  leaf_gbt.fit(p.x, constant_y);
  const auto qleaf = CompiledEnsemble::compile(leaf_gbt, {.quantize = true});
  ASSERT_TRUE(qleaf.quantized());
  expect_matrices_identical(qleaf.predict(p.x), leaf_gbt.predict(p.x));

  // Constant feature: no splits ever touch it, so its cut table is empty.
  Matrix x = p.x;
  for (std::size_t r = 0; r < x.rows(); ++r) x(r, 2) = 1.5;
  GbtRegressor model(gbt_with(GbtTreeMethod::kHist));
  model.fit(x, p.y);
  const auto quantized = CompiledEnsemble::compile(model, {.quantize = true});
  ASSERT_TRUE(quantized.quantized());
  expect_matrices_identical(quantized.predict(x), model.predict(x));
}

TEST(QuantizedParity, WideModelFallsBackToExact) {
  // Exact-greedy boosting mints fresh midpoint thresholds every round (the
  // residuals move, so the chosen splits move): enough rounds on enough
  // rows exceed 255 distinct cuts on a feature. The engine must keep
  // serving bit-identically (via the exact pool) and say why it skipped
  // quantization.
  const Problem p = make_problem(400, 0.4, 69);
  GbtOptions options = gbt_with(GbtTreeMethod::kExact);
  options.n_rounds = 80;
  options.max_depth = 6;
  GbtRegressor model(options);
  model.fit(p.x, p.y);
  const auto compiled = CompiledEnsemble::compile(model, {.quantize = true});
  EXPECT_FALSE(compiled.quantized());
  EXPECT_FALSE(compiled.quantize_note().empty());
  expect_matrices_identical(compiled.predict(p.x), model.predict(p.x));
}

// Parameterized noise sweep: learned models should always beat the mean
// baseline on structured data, at every noise level.
class NoiseSweep : public ::testing::TestWithParam<double> {};

TEST_P(NoiseSweep, LearnedModelsBeatMeanBaseline) {
  const double noise = GetParam();
  const Problem train = make_problem(500, noise, 24);
  const Problem test = make_problem(200, noise, 25);

  MeanRegressor mean;
  mean.fit(train.x, train.y);
  const double mean_mae = mean_absolute_error(test.y, mean.predict(test.x));

  GbtRegressor gbt(small_gbt());
  gbt.fit(train.x, train.y);
  EXPECT_LT(mean_absolute_error(test.y, gbt.predict(test.x)), mean_mae);

  ForestOptions fo;
  fo.n_trees = 30;
  RandomForest forest(fo);
  forest.fit(train.x, train.y);
  EXPECT_LT(mean_absolute_error(test.y, forest.predict(test.x)), mean_mae);
}

INSTANTIATE_TEST_SUITE_P(NoiseLevels, NoiseSweep,
                         ::testing::Values(0.0, 0.2, 0.5, 1.0));

}  // namespace
}  // namespace mphpc::ml
