// Contract-violation death tests for the public entry points of ml/,
// data/, sched/ and sim/, plus ThreadPool stress tests aimed at the TSan
// lane.
//
// The death tests prove the MPHPC_EXPECTS/ENSURES guards actually fire:
// each MPHPC_EXPECT_CONTRACT_DEATH re-runs the statement in a child
// process and asserts it dies with the contract diagnostic on stderr.
// This holds in both checked contract modes. In "abort" mode the handler
// prints and aborts directly; in "throw" mode GoogleTest's death-test
// child would otherwise catch the escaping ContractViolation and report
// "threw an exception" instead of dying, so the wrapper catches it,
// echoes what() to stderr, and aborts — same observable death either
// way. In "assume" mode contract violations are undefined behavior, so
// the whole file compiles out (that lane is benchmarks-only).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <numeric>
#include <thread>
#include <vector>

#include "arch/system_catalog.hpp"
#include "common/contract.hpp"
#include "common/thread_pool.hpp"
#include "data/split.hpp"
#include "data/table.hpp"
#include "ml/gbt.hpp"
#include "ml/matrix.hpp"
#include "ml/random_forest.hpp"
#include "ml/serialize.hpp"
#include "sched/easy_scheduler.hpp"
#include "sim/counter_synth.hpp"
#include "sim/perf_model.hpp"
#include "sim/runner.hpp"
#include "workload/app_catalog.hpp"
#include "workload/run_config.hpp"

#if MPHPC_CONTRACTS_CHECKED

namespace mphpc {
namespace {

// Death tests fork; "threadsafe" style re-execs the binary so they stay
// valid even though other tests in this process start threads.
class ContractDeathTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  }
};

// Run `stmt` in the death-test child; die with the contract diagnostic on
// stderr whether contracts throw (catch + echo + abort) or abort natively.
#define MPHPC_EXPECT_CONTRACT_DEATH(stmt, kind_regex)         \
  EXPECT_DEATH(                                               \
      {                                                       \
        try {                                                 \
          stmt;                                               \
        } catch (const ::mphpc::ContractViolation& e) {       \
          std::fprintf(stderr, "%s\n", e.what());             \
          std::abort();                                       \
        }                                                     \
      },                                                      \
      kind_regex)

// ------------------------------------------------------------------ ml ----

TEST_F(ContractDeathTest, MatrixRejectsMismatchedData) {
  MPHPC_EXPECT_CONTRACT_DEATH(ml::Matrix(2, 2, {1.0}), "precondition");
}

TEST_F(ContractDeathTest, MatrixAtRejectsOutOfBounds) {
  ml::Matrix m(2, 3);
  MPHPC_EXPECT_CONTRACT_DEATH((void)m.at(2, 0), "precondition");
}

TEST_F(ContractDeathTest, GbtPredictRequiresFit) {
  ml::GbtRegressor model;
  MPHPC_EXPECT_CONTRACT_DEATH((void)model.predict(ml::Matrix(1, 3)), "precondition");
}

TEST_F(ContractDeathTest, GbtFitRejectsBadSubsample) {
  ml::GbtOptions options;
  options.subsample = 0.0;
  ml::GbtRegressor model(options);
  ml::Matrix x(4, 2);
  ml::Matrix y(4, 1);
  MPHPC_EXPECT_CONTRACT_DEATH(model.fit(x, y), "precondition");
}

TEST_F(ContractDeathTest, RandomForestRejectsZeroTrees) {
  ml::ForestOptions options;
  options.n_trees = 0;
  ml::RandomForest model(options);
  ml::Matrix x(4, 2);
  ml::Matrix y(4, 1);
  MPHPC_EXPECT_CONTRACT_DEATH(model.fit(x, y), "precondition");
}

TEST_F(ContractDeathTest, SaveTextRejectsEmptyPath) {
  MPHPC_EXPECT_CONTRACT_DEATH(ml::save_text("model", ""), "precondition");
}

// ---------------------------------------------------------------- data ----

TEST_F(ContractDeathTest, TrainTestSplitRejectsZeroFraction) {
  MPHPC_EXPECT_CONTRACT_DEATH((void)data::train_test_split(10, 0.0, 1), "precondition");
}

TEST_F(ContractDeathTest, KFoldRejectsMoreFoldsThanRows) {
  MPHPC_EXPECT_CONTRACT_DEATH((void)data::k_fold(3, 4, 1), "precondition");
}

TEST_F(ContractDeathTest, TableRejectsRaggedColumn) {
  data::Table t;
  t.add_numeric_column("a", {1.0, 2.0});
  MPHPC_EXPECT_CONTRACT_DEATH(t.add_numeric_column("b", {1.0}), "precondition");
}

// --------------------------------------------------------------- sched ----

TEST_F(ContractDeathTest, BoundedSlowdownRejectsNonPositiveTau) {
  MPHPC_EXPECT_CONTRACT_DEATH((void)sched::average_bounded_slowdown({}, 0.0), "precondition");
}

TEST_F(ContractDeathTest, SimulateRejectsEmptyCluster) {
  sched::RoundRobinAssigner assigner;
  MPHPC_EXPECT_CONTRACT_DEATH((void)sched::simulate({}, {}, assigner), "precondition");
}

// ----------------------------------------------------------------- sim ----

TEST_F(ContractDeathTest, PredictTimeRejectsNonPositiveScale) {
  const workload::AppCatalog apps;
  const arch::SystemCatalog systems;
  const auto& app = apps.get("CoMD");
  const auto& sys = systems.get("quartz");
  const auto rc =
      workload::make_run_config(app, sys, workload::ScaleClass::kOneNode);
  MPHPC_EXPECT_CONTRACT_DEATH((void)sim::predict_time(app, 0.0, rc, sys), "precondition");
}

TEST_F(ContractDeathTest, SynthesizeCountersRejectsNonPositiveScale) {
  const workload::AppCatalog apps;
  const arch::SystemCatalog systems;
  const auto& app = apps.get("CoMD");
  const auto& sys = systems.get("quartz");
  const auto rc =
      workload::make_run_config(app, sys, workload::ScaleClass::kOneNode);
  const auto breakdown = sim::predict_time(app, 1.0, rc, sys);
  Rng rng(7);
  MPHPC_EXPECT_CONTRACT_DEATH(
      (void)sim::synthesize_counters(app, 0.0, rc, sys, breakdown, rng),
      "precondition");
}

TEST_F(ContractDeathTest, RunCampaignRejectsZeroInputs) {
  const workload::AppCatalog apps;
  const arch::SystemCatalog systems;
  sim::CampaignOptions options;
  options.inputs_per_app = 0;
  MPHPC_EXPECT_CONTRACT_DEATH((void)sim::run_campaign(apps, systems, options), "precondition");
}

// ------------------------------------------------------------- macros -----

TEST_F(ContractDeathTest, AssertFiresOnFalse) {
  MPHPC_EXPECT_CONTRACT_DEATH(MPHPC_ASSERT(1 + 1 == 3), "assertion");
}

TEST_F(ContractDeathTest, UnreachableFires) {
  MPHPC_EXPECT_CONTRACT_DEATH(MPHPC_UNREACHABLE("hit supposedly dead branch"), "unreachable");
}

TEST(Contracts, PassingChecksAreSilent) {
  MPHPC_EXPECTS(2 > 1);
  MPHPC_ENSURES(1 < 2);
  MPHPC_ASSERT(true);
}

}  // namespace
}  // namespace mphpc

#endif  // MPHPC_CONTRACTS_CHECKED

// ------------------------------------------------- ThreadPool stress ------
// Aimed at the TSan lane: hammer the submit/parallel_for/parallel_chunks
// completion paths, which is where a missed happens-before edge or a
// condvar lifetime bug would surface as a data race.

namespace mphpc {
namespace {

TEST(ThreadPoolStress, ParallelForManyRounds) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 512;
  for (int round = 0; round < 100; ++round) {
    std::vector<int> hits(kN, 0);
    pool.parallel_for(0, kN, [&](std::size_t i) { hits[i] += 1; });
    const int total = std::accumulate(hits.begin(), hits.end(), 0);
    ASSERT_EQ(total, static_cast<int>(kN));
  }
}

TEST(ThreadPoolStress, ParallelChunksReducesDeterministically) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 1000;
  for (int round = 0; round < 100; ++round) {
    std::vector<double> partial(pool.size() + 1, 0.0);
    const std::size_t chunks = pool.parallel_chunks(
        0, kN, [&](std::size_t c, std::size_t lo, std::size_t hi) {
          for (std::size_t i = lo; i < hi; ++i) {
            partial[c] += static_cast<double>(i);
          }
        });
    ASSERT_LE(chunks, partial.size());
    double sum = 0.0;
    for (std::size_t c = 0; c < chunks; ++c) sum += partial[c];
    ASSERT_EQ(sum, static_cast<double>(kN * (kN - 1) / 2));
  }
}

TEST(ThreadPoolStress, ConcurrentCallersShareOnePool) {
  ThreadPool pool(4);
  constexpr int kCallers = 4;
  constexpr std::size_t kN = 256;
  std::vector<long> results(kCallers, 0);
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (int t = 0; t < kCallers; ++t) {
    callers.emplace_back([&, t] {
      for (int round = 0; round < 25; ++round) {
        std::vector<long> local(kN, 0);
        pool.parallel_for(0, kN, [&](std::size_t i) {
          local[i] = static_cast<long>(i);
        });
        results[t] = std::accumulate(local.begin(), local.end(), 0L);
      }
    });
  }
  for (auto& c : callers) c.join();
  for (const long r : results) {
    EXPECT_EQ(r, static_cast<long>(kN * (kN - 1) / 2));
  }
}

// Regression: parallel_chunks used to deadlock when called from a worker
// thread — the blocked caller waited on done_cv while its chunks sat behind
// occupied workers. Every outer chunk here issues a nested parallel region
// on the same (tiny) pool, so without help-draining all workers end up
// blocked inside inner waits with the inner chunks still queued.
TEST(ThreadPoolStress, NestedParallelChunksFromWorkers) {
  ThreadPool pool(2);
  constexpr std::size_t kOuter = 8;
  constexpr std::size_t kInner = 500;
  for (int round = 0; round < 25; ++round) {
    std::vector<double> outer(kOuter, 0.0);
    pool.parallel_for(0, kOuter, [&](std::size_t i) {
      std::vector<double> partial(pool.size() + 1, 0.0);
      const std::size_t chunks = pool.parallel_chunks(
          0, kInner, [&](std::size_t c, std::size_t lo, std::size_t hi) {
            for (std::size_t j = lo; j < hi; ++j) {
              partial[c] += static_cast<double>(j);
            }
          });
      for (std::size_t c = 0; c < chunks; ++c) outer[i] += partial[c];
    });
    for (const double v : outer) {
      ASSERT_EQ(v, static_cast<double>(kInner * (kInner - 1) / 2));
    }
  }
}

// Two levels of nesting (output loop -> per-tree loop -> per-feature loop is
// the shape the histogram GBT trainer creates) must also make progress.
TEST(ThreadPoolStress, DoublyNestedParallelFor) {
  ThreadPool pool(3);
  std::vector<long> totals(4, 0);
  pool.parallel_for(0, totals.size(), [&](std::size_t i) {
    std::vector<long> mid(4, 0);
    pool.parallel_for(0, mid.size(), [&](std::size_t m) {
      std::vector<long> leaf(64, 0);
      pool.parallel_for(0, leaf.size(), [&](std::size_t j) {
        leaf[j] = static_cast<long>(j);
      });
      mid[m] = std::accumulate(leaf.begin(), leaf.end(), 0L);
    });
    totals[i] = std::accumulate(mid.begin(), mid.end(), 0L);
  });
  for (const long t : totals) EXPECT_EQ(t, 4L * (64L * 63L / 2L));
}

TEST(ThreadPoolStress, SubmitWaitIdleChurn) {
  for (int round = 0; round < 50; ++round) {
    ThreadPool pool(3);
    std::atomic<int> done{0};
    for (int i = 0; i < 64; ++i) {
      pool.submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
    }
    pool.wait_idle();
    EXPECT_EQ(done.load(), 64);
  }  // destructor joins with an empty queue every round
}

TEST(ThreadPoolStress, DestructionWithPendingWork) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 128; ++i) {
      pool.submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
    }
  }  // destructor must drain the queue before joining
  EXPECT_EQ(done.load(), 128);
}

}  // namespace
}  // namespace mphpc
