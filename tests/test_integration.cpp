// End-to-end integration tests: campaign -> dataset -> model -> scheduler,
// checking the qualitative findings of the paper hold on a reduced-size run.
#include <gtest/gtest.h>

#include <csignal>
#include <sys/wait.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "arch/system_catalog.hpp"
#include "common/thread_pool.hpp"
#include "core/dataset.hpp"
#include "core/importance.hpp"
#include "core/model_selection.hpp"
#include "core/predictor.hpp"
#include "data/csv.hpp"
#include "ml/mean_regressor.hpp"
#include "ml/metrics.hpp"
#include "data/split.hpp"
#include "sched/easy_scheduler.hpp"
#include "sched/workload_gen.hpp"
#include "sim/runner.hpp"
#include "workload/app_catalog.hpp"

namespace mphpc {
namespace {

// Shared reduced-size pipeline state, built once for the suite.
class EndToEnd : public ::testing::Test {
 protected:
  struct State {
    workload::AppCatalog apps;
    arch::SystemCatalog systems;
    core::Dataset dataset;
    core::CrossArchPredictor predictor;
    data::TrainTestSplit split;
  };

  static const State& state() {
    static const State s = [] {
      workload::AppCatalog apps;
      arch::SystemCatalog systems;
      sim::CampaignOptions campaign;
      campaign.inputs_per_app = 8;
      auto profiles = sim::run_campaign(apps, systems, campaign);
      core::Dataset dataset = core::build_dataset(profiles);
      const auto split = data::train_test_split(dataset.num_rows(), 0.10, 42);
      core::CrossArchPredictor::Options options;
      options.gbt.n_rounds = 120;
      options.gbt.max_depth = 6;
      core::CrossArchPredictor predictor(options);
      predictor.train(dataset, split.train);
      return State{std::move(apps), std::move(systems), std::move(dataset),
                   std::move(predictor), split};
    }();
    return s;
  }
};

TEST_F(EndToEnd, DatasetHasExpectedShape) {
  EXPECT_EQ(state().dataset.num_rows(), 20u * 8u * 4u * 3u);
}

TEST_F(EndToEnd, ModelBeatsMeanBaselineSubstantially) {
  const auto& s = state();
  const auto x_test = s.dataset.features(s.split.test);
  const auto y_test = s.dataset.targets(s.split.test);
  const auto metrics = core::evaluate(y_test, s.predictor.predict(x_test));

  ml::MeanRegressor mean;
  mean.fit(s.dataset.features(s.split.train), s.dataset.targets(s.split.train));
  const auto mean_metrics = core::evaluate(y_test, mean.predict(x_test));

  // The paper reports ~82% improvement over the mean baseline.
  EXPECT_LT(metrics.mae, 0.5 * mean_metrics.mae);
  EXPECT_GT(metrics.sos, mean_metrics.sos);
}

TEST_F(EndToEnd, ImportanceReportIsWellFormed) {
  const auto& s = state();
  const auto names = core::Dataset::feature_column_names();
  const auto report = core::importance_report(s.predictor.model(), names);
  ASSERT_EQ(report.size(), names.size());
  double sum = 0.0;
  for (const auto& fi : report) {
    EXPECT_GE(fi.importance, 0.0);
    sum += fi.importance;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
  // In our reproduction the explicit placement features absorb the
  // CPU-vs-GPU signal the paper attributes to branch intensity (see
  // EXPERIMENTS.md F6): uses_gpu must rank at the very top.
  EXPECT_EQ(report[0].feature, "uses_gpu");
  // The CPU<->GPU placement block (uses_gpu + cores + arch one-hots)
  // carries the dominant share of total gain.
  double placement = 0.0;
  for (const auto& fi : report) {
    if (fi.feature == "uses_gpu" || fi.feature == "cores" ||
        fi.feature.rfind("arch_", 0) == 0) {
      placement += fi.importance;
    }
  }
  EXPECT_GT(placement, 0.5);
}

TEST_F(EndToEnd, PredictsGpuAppFasterOnGpuSystems) {
  const auto& s = state();
  const sim::Profiler profiler(777);
  const auto& app = s.apps.get("DeepCam");
  const auto inputs = workload::make_inputs(app, 1, 777);
  const auto profile = profiler.profile(app, inputs[0], workload::ScaleClass::kOneNode,
                                        s.systems.get("quartz"));
  const core::Rpv rpv = s.predictor.predict(profile);
  // A DL app profiled on a CPU node should be predicted faster on GPU nodes.
  EXPECT_LT(rpv.time_ratio(arch::SystemId::kLassen),
            rpv.time_ratio(arch::SystemId::kQuartz));
}

TEST_F(EndToEnd, SchedulingModelBasedBeatsRandomAndRoundRobin) {
  const auto& s = state();
  const auto predictions = s.predictor.predict(s.dataset.features());
  const auto jobs =
      sched::sample_jobs(s.dataset, predictions, s.apps, 4000, 99);
  const auto machines = sched::default_cluster(s.systems);

  sched::ModelBasedAssigner model_based;
  sched::RandomAssigner random(1);
  sched::RoundRobinAssigner round_robin;
  const auto r_model = sched::simulate(jobs, machines, model_based);
  const auto r_random = sched::simulate(jobs, machines, random);
  const auto r_rr = sched::simulate(jobs, machines, round_robin);

  EXPECT_LT(r_model.makespan_s, r_random.makespan_s);
  EXPECT_LT(r_model.makespan_s, r_rr.makespan_s);
  EXPECT_LE(r_model.avg_bounded_slowdown, r_random.avg_bounded_slowdown);
}

TEST_F(EndToEnd, DatasetCsvRoundTrips) {
  const auto& s = state();
  const std::string path = ::testing::TempDir() + "/mphpc_dataset.csv";
  data::write_csv_file(s.dataset.table(), path);
  const data::Table restored = data::read_csv_file(path);
  EXPECT_EQ(restored.num_rows(), s.dataset.num_rows());
  EXPECT_EQ(restored.column_names(), s.dataset.table().column_names());
  EXPECT_EQ(restored.numeric("rpv_quartz"), s.dataset.table().numeric("rpv_quartz"));
}

TEST_F(EndToEnd, CountersFromCpuSourcesPredictNoWorseThanGpu) {
  // Fig. 3 direction: CPU-sourced counters should be at least as good.
  const auto& s = state();
  const auto& systems = s.dataset.systems();
  const auto x = s.dataset.features();
  const auto y = s.dataset.targets();

  const auto eval_source = [&](const char* name) {
    std::vector<std::size_t> rows = data::rows_where(systems, name);
    const auto split_rows = data::train_test_split(rows.size(), 0.2, 5);
    std::vector<std::size_t> train;
    std::vector<std::size_t> test;
    for (const auto p : split_rows.train) train.push_back(rows[p]);
    for (const auto p : split_rows.test) test.push_back(rows[p]);
    ml::GbtOptions options;
    options.n_rounds = 80;
    options.max_depth = 5;
    ml::GbtRegressor model(options);
    model.fit(x.select_rows(train), y.select_rows(train));
    return ml::mean_absolute_error(y.select_rows(test),
                                   model.predict(x.select_rows(test)));
  };

  const double ruby = eval_source("ruby");
  const double corona = eval_source("corona");
  EXPECT_LT(ruby, corona * 1.3);  // CPU source competitive-or-better
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST_F(EndToEnd, TrainResumeAfterSigkillIsBitIdentical) {
  // Crash-safe training end to end: a child process is SIGKILLed mid-fit
  // (no destructors, no cleanup — the honest crash), then a resumed train
  // in this process must produce the byte-identical model file an
  // uninterrupted train writes.
  const auto& s = state();
  const std::string dir = ::testing::TempDir();
  const std::string reference_path = dir + "/mphpc_resume_reference.model";
  const std::string model_path = dir + "/mphpc_resume.model";
  const std::string ckpt_path = model_path + ".ckpt";
  for (const auto& p : {reference_path, model_path, ckpt_path,
                        ckpt_path + ".manifest"}) {
    std::filesystem::remove(p);
  }

  core::CrossArchPredictor::Options options;
  options.gbt.n_rounds = 160;
  options.gbt.max_depth = 6;

  core::CrossArchPredictor reference(options);
  reference.train(s.dataset, s.split.train);
  reference.save(reference_path);

  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: checkpoint every 2 rounds until killed. SIGKILL gives no
    // chance to flush anything — only completed atomic renames survive.
    core::CrossArchPredictor victim(options);
    victim.train_checkpointed(s.dataset, {ckpt_path, /*every=*/2, false, {}},
                              s.split.train);
    victim.save(model_path);
    _exit(0);
  }
  // Parent: the checkpoint file appearing (atomic rename) proves the
  // child is mid-fit with at least 2 rounds on disk; kill it then.
  while (!std::filesystem::exists(ckpt_path)) {
    int status = 0;
    ASSERT_EQ(waitpid(pid, &status, WNOHANG), 0)
        << "child finished before it could be killed; raise n_rounds";
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_EQ(kill(pid, SIGKILL), 0);
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status));
  ASSERT_FALSE(std::filesystem::exists(model_path));  // really interrupted
  ASSERT_TRUE(std::filesystem::exists(ckpt_path + ".manifest"));

  core::CrossArchPredictor resumed(options);
  resumed.train_checkpointed(s.dataset, {ckpt_path, /*every=*/2, /*resume=*/true, {}},
                             s.split.train);
  resumed.save(model_path);

  const std::string expected = read_file(reference_path);
  ASSERT_FALSE(expected.empty());
  EXPECT_EQ(read_file(model_path), expected);
  // Successful completion cleans up the checkpoint pair.
  EXPECT_FALSE(std::filesystem::exists(ckpt_path));
  EXPECT_FALSE(std::filesystem::exists(ckpt_path + ".manifest"));
}

TEST_F(EndToEnd, TrainResumeRejectsForeignCheckpoint) {
  // A checkpoint from a different configuration must not silently seed
  // the fit.
  const auto& s = state();
  const std::string dir = ::testing::TempDir();
  const std::string ckpt_path = dir + "/mphpc_foreign.model.ckpt";

  core::CrossArchPredictor::Options options;
  options.gbt.n_rounds = 20;
  options.gbt.max_depth = 4;
  core::CrossArchPredictor donor(options);
  donor.train(s.dataset, s.split.train);
  donor.save(ckpt_path);
  {
    std::ofstream manifest(ckpt_path + ".manifest");
    manifest << "mphpc-train-checkpoint v1\nrows 1\nfeatures 1\noptions bogus\n";
  }

  core::CrossArchPredictor resumed(options);
  EXPECT_THROW(resumed.train_checkpointed(
                   s.dataset, {ckpt_path, /*every=*/2, /*resume=*/true, {}},
                   s.split.train),
               std::runtime_error);
  std::filesystem::remove(ckpt_path);
  std::filesystem::remove(ckpt_path + ".manifest");
}

}  // namespace
}  // namespace mphpc
