// Tests for src/serve: the JSON parser, the wire protocol, drift
// detection, the crash-safe model store, and the ServeCore online
// service (refit/hot-swap, drift trip/recover, SIGKILL-and-restart).
#include <gtest/gtest.h>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "arch/system_catalog.hpp"
#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "core/dataset.hpp"
#include "core/predictor.hpp"
#include "serve/drift.hpp"
#include "serve/json.hpp"
#include "serve/model_store.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"
#include "sim/runner.hpp"
#include "workload/app_catalog.hpp"

namespace mphpc::serve {
namespace {

// ------------------------------------------------------------ fixtures ----

struct SharedState {
  core::CrossArchPredictor predictor;
  std::string model_path;
  std::vector<sim::RunProfile> profiles;
};

/// One small trained model + a handful of profiles, built once for the
/// whole suite (and, crucially, before any fork() in the crash test).
const SharedState& shared_state() {
  static const SharedState state = [] {
    const workload::AppCatalog apps;
    const arch::SystemCatalog systems;
    sim::CampaignOptions campaign;
    campaign.inputs_per_app = 2;
    const auto dataset =
        core::build_dataset(sim::run_campaign(apps, systems, campaign));

    core::CrossArchPredictor::Options options;
    options.gbt.n_rounds = 20;
    options.gbt.max_depth = 3;
    SharedState s{core::CrossArchPredictor(options),
                  ::testing::TempDir() + "/serve_seed_model.txt",
                  {}};
    s.predictor.train(dataset);
    s.predictor.save(s.model_path);

    const sim::Profiler profiler(99);
    for (const auto* app : {"CoMD", "AMG", "XSBench"}) {
      const auto& sig = apps.get(app);
      const auto inputs = workload::make_inputs(sig, 2, 99);
      for (const auto* sys : {"quartz", "lassen"}) {
        for (const auto& input : inputs) {
          s.profiles.push_back(profiler.profile(
              sig, input, workload::ScaleClass::kOneNode, systems.get(sys)));
        }
      }
    }
    return s;
  }();
  return state;
}

std::string fresh_dir(const std::string& tag) {
  const std::string dir = ::testing::TempDir() + "/serve_" + tag;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

ServeOptions test_options(const std::string& state_dir) {
  ServeOptions o;
  o.state_dir = state_dir;
  o.model_path = shared_state().model_path;
  o.drift.window = 8;
  // Shadow error for model-consistent feedback is |rpv - rpv/rpv[ref]|,
  // small but not zero; keep a wide hysteresis band so these tests probe
  // the state machine, not the model's self-consistency.
  o.drift.trip_mae = 2.0;
  o.drift.recover_mae = 0.75;
  o.refit_every = 8;
  o.min_refit_rows = 4;
  o.refit_rounds = 5;
  o.window_capacity = 64;
  // The legacy drift suite below probes the single global detector
  // (exact trip-on-window-fill timing); per-app quarantine would change
  // which samples reach the global window, so pin it off here and test
  // DriftMap semantics separately.
  o.drift_max_apps = 0;
  return o;
}

Request predict_request(const sim::RunProfile& profile, std::string id) {
  Request r;
  r.op = Op::kPredict;
  r.id = std::move(id);
  r.profile = profile;
  return r;
}

Request feedback_request(const sim::RunProfile& profile,
                         const core::SystemTimes& times, std::string id) {
  Request r;
  r.op = Op::kFeedback;
  r.id = std::move(id);
  r.profile = profile;
  r.times = times;
  return r;
}

/// Times consistent with what `model` predicts — near-zero drift error.
core::SystemTimes consistent_times(const core::CrossArchPredictor& model,
                                   const sim::RunProfile& profile) {
  const core::Rpv rpv = model.predict(profile);
  core::SystemTimes times{};
  for (std::size_t k = 0; k < arch::kNumSystems; ++k) times[k] = 10.0 * rpv[k];
  return times;
}

/// Times no cross-architecture model would predict — huge drift error.
core::SystemTimes drifted_times() { return {1.0, 500.0, 1.0, 500.0}; }

// ---------------------------------------------------------------- json ----

TEST(ServeJson, ParsesScalarsAndNesting) {
  const JsonValue v = JsonValue::parse(
      R"({"a":1.5,"b":"x","c":[true,false,null],"d":{"e":-2e3}})");
  ASSERT_TRUE(v.is_object());
  EXPECT_DOUBLE_EQ(v.find("a")->as_number(), 1.5);
  EXPECT_EQ(v.find("b")->as_string(), "x");
  const auto& items = v.find("c")->items();
  ASSERT_EQ(items.size(), 3u);
  EXPECT_TRUE(items[0].as_bool());
  EXPECT_FALSE(items[1].as_bool());
  EXPECT_TRUE(items[2].is_null());
  EXPECT_DOUBLE_EQ(v.find("d")->find("e")->as_number(), -2000.0);
}

TEST(ServeJson, DecodesStringEscapes) {
  const JsonValue v =
      JsonValue::parse(R"({"s":"a\"b\\c\n\tAé"})");
  EXPECT_EQ(v.find("s")->as_string(), "a\"b\\c\n\tA\xc3\xa9");
}

TEST(ServeJson, FindIsNullptrOnAbsentOrNonObject) {
  const JsonValue v = JsonValue::parse(R"({"a":1})");
  EXPECT_EQ(v.find("missing"), nullptr);
  EXPECT_EQ(v.find("a")->find("anything"), nullptr);
}

TEST(ServeJson, RejectsMalformedInput) {
  EXPECT_THROW(JsonValue::parse(""), ParseError);
  EXPECT_THROW(JsonValue::parse("{"), ParseError);
  EXPECT_THROW(JsonValue::parse(R"({"a":})"), ParseError);
  EXPECT_THROW(JsonValue::parse(R"("unterminated)"), ParseError);
  EXPECT_THROW(JsonValue::parse("nul"), ParseError);
  EXPECT_THROW(JsonValue::parse("{} trailing"), ParseError);
  EXPECT_THROW(JsonValue::parse("1 2"), ParseError);
  EXPECT_THROW(JsonValue::parse(R"({"a":1,})"), ParseError);
}

TEST(ServeJson, DepthCapStopsNestingBombs) {
  std::string bomb;
  for (int i = 0; i < 200; ++i) bomb += '[';
  for (int i = 0; i < 200; ++i) bomb += ']';
  EXPECT_THROW(JsonValue::parse(bomb), ParseError);
}

TEST(ServeJson, AccessorsEnforceKind) {
  const JsonValue v = JsonValue::parse("42");
  EXPECT_THROW(v.as_string(), ContractViolation);
  EXPECT_THROW(v.as_bool(), ContractViolation);
  EXPECT_THROW(v.items(), ContractViolation);
}

// ------------------------------------------------------------ protocol ----

constexpr const char* kPredictLine =
    R"({"op":"predict","id":"p1","profile":{"app":"CoMD","system":"ruby",)"
    R"("scale":"2node","nodes":2,"ranks":72,"cores":72,"gpus":0,)"
    R"("device":"cpu","time_s":3.5,"input_index":1,"input_scale":2.0,)"
    R"("counters":{"total_instructions":1e9,"load_instructions":2e8,)"
    R"("total_cycles":3e9}}})";

TEST(ServeProtocol, ParsesPredictRequest) {
  const Request r = parse_request(kPredictLine);
  EXPECT_EQ(r.op, Op::kPredict);
  EXPECT_EQ(r.id, "p1");
  EXPECT_EQ(r.profile.app, "CoMD");
  EXPECT_EQ(r.profile.system, arch::SystemId::kRuby);
  EXPECT_EQ(r.profile.config.scale_class, workload::ScaleClass::kTwoNodes);
  EXPECT_EQ(r.profile.config.nodes, 2);
  EXPECT_EQ(r.profile.config.ranks, 72);
  EXPECT_DOUBLE_EQ(r.profile.time_s, 3.5);
  EXPECT_DOUBLE_EQ(
      sim::get(r.profile.counters, arch::CounterKind::kTotalInstructions), 1e9);
  EXPECT_DOUBLE_EQ(
      sim::get(r.profile.counters, arch::CounterKind::kLoadInstructions), 2e8);
}

TEST(ServeProtocol, ParsesFeedbackRequestWithAllFourTimes) {
  const Request r = parse_request(
      R"({"op":"feedback","id":"f1","profile":{"app":"x","system":"quartz",)"
      R"("counters":{"total_instructions":5}},)"
      R"("times":{"quartz":10,"ruby":8,"lassen":4,"corona":5}})");
  EXPECT_EQ(r.op, Op::kFeedback);
  EXPECT_DOUBLE_EQ(r.times[static_cast<std::size_t>(arch::SystemId::kQuartz)], 10.0);
  EXPECT_DOUBLE_EQ(r.times[static_cast<std::size_t>(arch::SystemId::kLassen)], 4.0);
}

TEST(ServeProtocol, ParsesBareOps) {
  EXPECT_EQ(parse_request(R"({"op":"stats"})").op, Op::kStats);
  EXPECT_EQ(parse_request(R"({"op":"shutdown","id":"q"})").op, Op::kShutdown);
}

TEST(ServeProtocol, RejectsInvalidRequests) {
  // Each line is malformed in exactly one way.
  const char* bad_lines[] = {
      R"([1,2,3])",                                     // not an object
      R"({"id":"x"})",                                  // missing op
      R"({"op":"frobnicate"})",                         // unknown op
      R"({"op":"predict"})",                            // missing profile
      R"({"op":"predict","profile":{"system":"quartz",
          "counters":{"total_instructions":1}}})",      // missing app
      R"({"op":"predict","profile":{"app":"a","system":"vulcan",
          "counters":{"total_instructions":1}}})",      // unknown system
      R"({"op":"predict","profile":{"app":"a","system":"quartz",
          "counters":{"total_instructions":0}}})",      // zero instructions
      R"({"op":"predict","profile":{"app":"a","system":"quartz",
          "counters":{"bogus_counter":1}}})",           // unknown counter
      R"({"op":"predict","profile":{"app":"a","system":"quartz","nodes":0,
          "counters":{"total_instructions":1}}})",      // nodes < 1
      R"({"op":"predict","profile":{"app":"a","system":"quartz","scale":"4node",
          "counters":{"total_instructions":1}}})",      // unknown scale
      R"({"op":"feedback","profile":{"app":"a","system":"quartz",
          "counters":{"total_instructions":1}},
          "times":{"quartz":1,"ruby":1,"lassen":1}})",  // missing corona
      R"({"op":"feedback","profile":{"app":"a","system":"quartz",
          "counters":{"total_instructions":1}},
          "times":{"quartz":1,"ruby":1,"lassen":1,"corona":0}})",  // t <= 0
      R"({"op":"feedback","profile":{"app":"a","system":"quartz",
          "counters":{"total_instructions":1}},
          "times":{"quartz":1,"quartz":2,"ruby":1,"lassen":1}})",
      // ^ duplicate key: 4 entries but corona's slot would stay 0
      R"({"op":"predict","profile":{"app":"a","system":"quartz","nodes":1e18,
          "counters":{"total_instructions":1}}})",      // nodes overflows int
      R"({"op":"predict","profile":{"app":"a","system":"quartz","nodes":1.5,
          "counters":{"total_instructions":1}}})",      // nodes not integral
  };
  for (const char* line : bad_lines) {
    EXPECT_THROW(parse_request(line), ParseError) << line;
  }
}

TEST(ServeProtocol, RepliesRoundTripThroughTheParser) {
  const core::Rpv rpv({1.0, 0.5, 2.0, 1.5});
  const JsonValue p = JsonValue::parse(predict_reply("p9", rpv, false));
  EXPECT_EQ(p.find("id")->as_string(), "p9");
  EXPECT_TRUE(p.find("ok")->as_bool());
  ASSERT_EQ(p.find("rpv")->items().size(), arch::kNumSystems);
  EXPECT_DOUBLE_EQ(p.find("rpv")->items()[1].as_number(), 0.5);
  EXPECT_EQ(p.find("fastest")->as_string(), "ruby");
  EXPECT_FALSE(p.find("fallback")->as_bool());

  const JsonValue f = JsonValue::parse(feedback_reply("f9", true, 0.25));
  EXPECT_TRUE(f.find("degraded")->as_bool());
  EXPECT_DOUBLE_EQ(f.find("rolling_mae")->as_number(), 0.25);

  const JsonValue e = JsonValue::parse(error_reply("", "bad_request", "no \"op\""));
  EXPECT_FALSE(e.find("ok")->as_bool());
  EXPECT_EQ(e.find("code")->as_string(), "bad_request");
  EXPECT_EQ(e.find("error")->as_string(), "no \"op\"");
}

// --------------------------------------------------------------- drift ----

TEST(ServeDrift, NoTransitionBeforeTheWindowFills) {
  DriftDetector d({/*window=*/4, /*trip_mae=*/0.5, /*recover_mae=*/0.2});
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(d.observe(100.0), DriftDetector::State::kHealthy);
  }
  EXPECT_EQ(d.samples(), 3u);
  EXPECT_EQ(d.trips(), 0);
}

TEST(ServeDrift, TripsOnFullWindowAndRecoversWithHysteresis) {
  DriftDetector d({/*window=*/4, /*trip_mae=*/0.5, /*recover_mae=*/0.2});
  d.observe(1.0);
  d.observe(1.0);
  d.observe(1.0);
  EXPECT_EQ(d.observe(1.0), DriftDetector::State::kTripped);
  EXPECT_TRUE(d.tripped());
  EXPECT_EQ(d.trips(), 1);

  // Mean falls below trip but stays above recover: still tripped (no flap).
  d.observe(0.0);
  d.observe(0.0);
  EXPECT_NEAR(d.rolling_mae(), 0.5, 1e-12);
  EXPECT_TRUE(d.tripped());

  // Only dropping below the strictly-lower recover threshold heals it.
  d.observe(0.0);
  EXPECT_EQ(d.observe(0.0), DriftDetector::State::kHealthy);
  EXPECT_EQ(d.recoveries(), 1);
  EXPECT_EQ(d.trips(), 1);
}

TEST(ServeDrift, RollingMaeIsWindowMean) {
  DriftDetector d({/*window=*/3, /*trip_mae=*/10.0, /*recover_mae=*/1.0});
  d.observe(1.0);
  d.observe(2.0);
  EXPECT_NEAR(d.rolling_mae(), 1.5, 1e-12);
  d.observe(3.0);
  EXPECT_NEAR(d.rolling_mae(), 2.0, 1e-12);
  d.observe(7.0);  // evicts the 1.0
  EXPECT_NEAR(d.rolling_mae(), 4.0, 1e-12);
}

TEST(ServeDrift, RejectsBadConfigAndObservations) {
  EXPECT_THROW(DriftDetector({0, 0.5, 0.2}), ContractViolation);
  EXPECT_THROW(DriftDetector({4, 0.5, 0.5}), ContractViolation);   // no band
  EXPECT_THROW(DriftDetector({4, 0.5, 0.0}), ContractViolation);   // recover > 0
  DriftDetector d({4, 0.5, 0.2});
  EXPECT_THROW(d.observe(-1.0), ContractViolation);
  EXPECT_THROW(d.observe(std::numeric_limits<double>::infinity()),
               ContractViolation);
}

// ----------------------------------------------------------- drift map ----

DriftMapOptions drift_map_options() {
  DriftMapOptions o;
  o.global = {/*window=*/8, /*trip_mae=*/0.5, /*recover_mae=*/0.2};
  o.max_apps = 4;
  o.app_window = 4;
  return o;
}

TEST(ServeDriftMap, AppTripQuarantinesItFromGlobal) {
  DriftMap m(drift_map_options());
  // App A goes bad: its own window-4 detector trips on the 4th sample.
  for (int i = 0; i < 3; ++i) {
    EXPECT_FALSE(m.observe("A", 1.0).app_tripped);
  }
  const auto trip = m.observe("A", 1.0);
  EXPECT_TRUE(trip.app_tripped);
  EXPECT_FALSE(trip.global_tripped);
  EXPECT_TRUE(m.degraded("A"));
  EXPECT_FALSE(m.degraded("B"));

  // Only the 3 pre-trip samples reached the global pool; once tripped,
  // A's garbage is quarantined and stops dragging the global mean up.
  EXPECT_EQ(m.global().samples(), 3u);
  (void)m.observe("A", 1.0);
  EXPECT_EQ(m.global().samples(), 3u);

  // B's clean stream fills the global window without tripping it.
  for (int i = 0; i < 8; ++i) (void)m.observe("B", 0.0);
  EXPECT_FALSE(m.global().tripped());
  EXPECT_FALSE(m.degraded("B"));
  EXPECT_TRUE(m.degraded("A"));
  EXPECT_EQ(m.apps_tripped(), 1u);
  ASSERT_EQ(m.tripped_apps().size(), 1u);
  EXPECT_EQ(m.tripped_apps()[0], "A");
}

TEST(ServeDriftMap, AppRecoversAndRejoinsGlobalPool) {
  DriftMap m(drift_map_options());
  for (int i = 0; i < 4; ++i) (void)m.observe("A", 1.0);
  ASSERT_TRUE(m.degraded("A"));

  // Clean samples wash A's window-4 detector below recover_mae.
  bool recovered = false;
  for (int i = 0; i < 4 && !recovered; ++i) {
    recovered = !m.observe("A", 0.0).app_tripped;
  }
  EXPECT_TRUE(recovered);
  EXPECT_FALSE(m.degraded("A"));
  EXPECT_EQ(m.apps_tripped(), 0u);

  // Recovered: A's samples feed the global detector again.
  const std::size_t before = m.global().samples();
  (void)m.observe("A", 0.0);
  EXPECT_EQ(m.global().samples(), before + 1);
}

TEST(ServeDriftMap, LruEvictsBeyondMaxApps) {
  DriftMapOptions o = drift_map_options();
  o.max_apps = 2;
  DriftMap m(o);
  for (int i = 0; i < 4; ++i) (void)m.observe("A", 1.0);  // A trips
  ASSERT_TRUE(m.app_tripped("A"));
  (void)m.observe("B", 0.0);
  (void)m.observe("C", 0.0);  // evicts A, the least recently used
  EXPECT_EQ(m.apps_tracked(), 2u);
  EXPECT_FALSE(m.app_tripped("A"));  // evicted: per-app state forgotten
  EXPECT_FALSE(m.degraded("A"));     // healthy global still covers it
}

TEST(ServeDriftMap, ZeroMaxAppsDegeneratesToGlobalDetector) {
  DriftMapOptions o = drift_map_options();
  o.max_apps = 0;
  DriftMap m(o);
  for (int i = 0; i < 8; ++i) {
    EXPECT_FALSE(m.observe("A", 1.0).app_tripped);  // no per-app tracking
  }
  EXPECT_EQ(m.apps_tracked(), 0u);
  EXPECT_TRUE(m.global().tripped());  // every sample reached global
  EXPECT_TRUE(m.degraded("A"));
  EXPECT_TRUE(m.degraded("never-seen"));
}

TEST(ServeDriftMap, GlobalTripDegradesUnseenApps) {
  DriftMap m(drift_map_options());
  // Eight distinct apps each contribute one bad sample: no per-app
  // window (4) ever fills, but the global window (8) does — genuine
  // fleet-wide drift trips global and degrades everyone.
  for (int i = 0; i < 8; ++i) {
    (void)m.observe("app-" + std::to_string(i), 1.0);
  }
  EXPECT_TRUE(m.global().tripped());
  EXPECT_EQ(m.apps_tripped(), 0u);
  EXPECT_TRUE(m.degraded("someone-else"));
}

// --------------------------------------------------------- model store ----

TEST(ServeModelStore, RoundTripsModelGenerationAndFingerprint) {
  const std::string dir = fresh_dir("store_roundtrip");
  const ModelStore store(dir + "/model.txt");
  EXPECT_FALSE(store.load().has_value());  // nothing stored yet

  const auto& s = shared_state();
  const std::string fingerprint = store.store(s.predictor, 3);
  EXPECT_EQ(fingerprint.size(), 16u);  // fnv1a64 as fixed-width hex

  const auto loaded = store.load();
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->generation, 3);
  EXPECT_EQ(loaded->fingerprint, fingerprint);
  const auto& profile = s.profiles.front();
  const core::Rpv a = s.predictor.predict(profile);
  const core::Rpv b = loaded->predictor.predict(profile);
  for (std::size_t k = 0; k < arch::kNumSystems; ++k) EXPECT_EQ(a[k], b[k]);
}

TEST(ServeModelStore, SameModelSameFingerprintNewModelNewFingerprint) {
  const std::string dir = fresh_dir("store_fp");
  const ModelStore store(dir + "/model.txt");
  const auto& s = shared_state();
  const std::string f1 = store.store(s.predictor, 0);
  const std::string f2 = store.store(s.predictor, 1);
  EXPECT_EQ(f1, f2);  // fingerprint hashes the model body, not the header

  core::CrossArchPredictor refitted = s.predictor;
  ml::Matrix x(4, core::FeaturePipeline::kNumFeatures);
  ml::Matrix y(4, arch::kNumSystems);
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < x.cols(); ++c) x(r, c) = 0.1 * static_cast<double>(r);
    for (std::size_t c = 0; c < y.cols(); ++c) y(r, c) = 1.0;
  }
  refitted.warm_refit(x, y, 2);
  EXPECT_NE(store.store(refitted, 2), f1);
}

TEST(ServeModelStore, RejectsTamperedFile) {
  const std::string dir = fresh_dir("store_tamper");
  const ModelStore store(dir + "/model.txt");
  store.store(shared_state().predictor, 1);

  std::string text;
  {
    std::ifstream in(store.path());
    text.assign(std::istreambuf_iterator<char>(in), {});
  }
  // Flip one body byte: the header fingerprint must no longer verify.
  std::string corrupt = text;
  corrupt[corrupt.size() / 2] ^= 1;
  {
    std::ofstream out(store.path());
    out << corrupt;
  }
  EXPECT_THROW(store.load(), ParseError);

  // A foreign header is rejected before the body is even considered.
  {
    std::ofstream out(store.path());
    out << "some-other-format v9 1 abc\nbody\n";
  }
  EXPECT_THROW(store.load(), ParseError);
}

TEST(ServeModelStore, PeekHeaderMatchesLoadWithoutParsingBody) {
  const std::string dir = fresh_dir("store_peek");
  const ModelStore store(dir + "/model.txt");
  EXPECT_FALSE(store.peek_header().has_value());  // no store file yet

  const std::string fingerprint = store.store(shared_state().predictor, 7);
  const auto header = store.peek_header();
  ASSERT_TRUE(header.has_value());
  EXPECT_EQ(header->generation, 7);
  EXPECT_EQ(header->fingerprint, fingerprint);

  {
    std::ofstream out(store.path());
    out << "not-a-store-header at all\nbody\n";
  }
  EXPECT_THROW(store.peek_header(), ParseError);
}

// --------------------------------------------------------- refit lease ----

TEST(ServeRefitLease, NullLeaseAlwaysAcquiresAndTouchesNothing) {
  RefitLease lease;
  EXPECT_FALSE(lease.enabled());
  EXPECT_TRUE(lease.try_acquire());
  lease.refresh();
  lease.release();
  EXPECT_EQ(lease.read_holder(), "");
}

TEST(ServeRefitLease, ExclusiveAcquireAndHandoffOnRelease) {
  const std::string path = fresh_dir("lease_excl") + "/refit.lease";
  RefitLease a(path, "worker-0", 30.0);
  RefitLease b(path, "worker-1", 30.0);
  EXPECT_TRUE(a.try_acquire());
  EXPECT_TRUE(a.held());
  EXPECT_TRUE(a.try_acquire());  // re-entrant for the holder
  EXPECT_FALSE(b.try_acquire());
  EXPECT_EQ(b.read_holder(), "worker-0");
  a.release();
  EXPECT_FALSE(a.held());
  EXPECT_TRUE(b.try_acquire());
  EXPECT_EQ(a.read_holder(), "worker-1");
}

TEST(ServeRefitLease, TakesOverStaleHolderButRespectsFreshOne) {
  const std::string path = fresh_dir("lease_stale") + "/refit.lease";
  RefitLease dead(path, "dead-worker", 30.0);
  ASSERT_TRUE(dead.try_acquire());
  // Backdate the lease: a SIGKILLed holder never unlinks, so only its
  // mtime going stale gives the fleet the lease back.
  std::filesystem::last_write_time(
      path,
      std::filesystem::file_time_type::clock::now() - std::chrono::hours(1));
  RefitLease live(path, "live-worker", 30.0);
  EXPECT_TRUE(live.try_acquire());
  EXPECT_EQ(live.read_holder(), "live-worker");

  // A fresh (recent-mtime) lease is respected.
  RefitLease contender(path, "contender", 30.0);
  EXPECT_FALSE(contender.try_acquire());
}

TEST(ServeRefitLease, RefreshForestallsTakeover) {
  const std::string path = fresh_dir("lease_refresh") + "/refit.lease";
  RefitLease holder(path, "holder", 30.0);
  ASSERT_TRUE(holder.try_acquire());
  std::filesystem::last_write_time(
      path,
      std::filesystem::file_time_type::clock::now() - std::chrono::hours(1));
  holder.refresh();  // a long refit keeps bumping the mtime
  RefitLease contender(path, "contender", 30.0);
  EXPECT_FALSE(contender.try_acquire());
}

TEST(ServeRefitLease, MoveTransfersOwnership) {
  const std::string path = fresh_dir("lease_move") + "/refit.lease";
  RefitLease a(path, "mover", 30.0);
  ASSERT_TRUE(a.try_acquire());
  RefitLease b(std::move(a));
  EXPECT_TRUE(b.held());
  EXPECT_FALSE(a.held());  // moved-from: defined, lease-less state
  b.release();
  EXPECT_EQ(b.read_holder(), "");
}

// -------------------------------------------------------- intake queue ----

Pending make_pending(Op op, std::string id) {
  Pending p;
  p.request.op = op;
  p.request.id = std::move(id);
  return p;
}

TEST(ServeIntakeQueue, PriorityLaneDrainsBeforeFeedback) {
  IntakeQueue q(8);
  EXPECT_FALSE(q.push(make_pending(Op::kFeedback, "f1")).has_value());
  EXPECT_FALSE(q.push(make_pending(Op::kPredict, "p1")).has_value());
  EXPECT_FALSE(q.push(make_pending(Op::kFeedback, "f2")).has_value());
  EXPECT_FALSE(q.push(make_pending(Op::kStats, "s1")).has_value());
  EXPECT_EQ(q.predict_depth(), 2u);  // predict + stats share the lane
  EXPECT_EQ(q.feedback_depth(), 2u);

  std::vector<Pending> out;
  EXPECT_EQ(q.pop_batch(10, out), 4u);
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out[0].request.id, "p1");
  EXPECT_EQ(out[1].request.id, "s1");
  EXPECT_EQ(out[2].request.id, "f1");
  EXPECT_EQ(out[3].request.id, "f2");
  EXPECT_TRUE(q.empty());
}

TEST(ServeIntakeQueue, ShedsOldestFeedbackBeforeAnyPredict) {
  IntakeQueue q(2);
  EXPECT_FALSE(q.push(make_pending(Op::kFeedback, "f1")).has_value());
  EXPECT_FALSE(q.push(make_pending(Op::kPredict, "p1")).has_value());
  // At capacity: the incoming predict displaces the oldest feedback.
  const auto victim = q.push(make_pending(Op::kPredict, "p2"));
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(victim->request.id, "f1");
  EXPECT_EQ(victim->request.op, Op::kFeedback);
  // No feedback left to sacrifice: the oldest predict goes next.
  const auto victim2 = q.push(make_pending(Op::kPredict, "p3"));
  ASSERT_TRUE(victim2.has_value());
  EXPECT_EQ(victim2->request.id, "p1");
  EXPECT_EQ(q.size(), 2u);

  std::vector<Pending> out;
  EXPECT_EQ(q.pop_batch(10, out), 2u);
  EXPECT_EQ(out[0].request.id, "p2");
  EXPECT_EQ(out[1].request.id, "p3");
}

// ----------------------------------------------------------- serve core ----

TEST(ServeCoreTest, BootstrapSeedsStoreFromModelAtGenerationZero) {
  const std::string dir = fresh_dir("boot_seed");
  ServeCore core(test_options(dir));
  EXPECT_EQ(core.generation(), 0);
  EXPECT_TRUE(core.bootstrap_note().empty());
  EXPECT_FALSE(core.degraded());

  // SIGKILL before the first refit must already find a persisted model.
  const auto stored = ModelStore(dir + "/serve_model.txt").load();
  ASSERT_TRUE(stored.has_value());
  EXPECT_EQ(stored->generation, 0);
  EXPECT_EQ(stored->fingerprint, core.fingerprint());
}

TEST(ServeCoreTest, BootstrapPrefersStoreSurvivorOverSeedModel) {
  const std::string dir = fresh_dir("boot_survivor");
  std::string fingerprint_after_refit;
  {
    ServeCore core(test_options(dir));
    const auto& s = shared_state();
    for (std::size_t i = 0; i < core.options().refit_every; ++i) {
      const auto& p = s.profiles[i % s.profiles.size()];
      (void)core.handle_request(
          feedback_request(p, consistent_times(s.predictor, p), "f"));
    }
    ASSERT_TRUE(core.run_refit());
    EXPECT_EQ(core.generation(), 1);
    fingerprint_after_refit = core.fingerprint();
  }
  ServeCore restarted(test_options(dir));
  EXPECT_EQ(restarted.generation(), 1);
  EXPECT_EQ(restarted.fingerprint(), fingerprint_after_refit);
  EXPECT_TRUE(restarted.bootstrap_note().empty());
}

TEST(ServeCoreTest, BootstrapFallsBackToModelWhenStoreIsCorrupt) {
  const std::string dir = fresh_dir("boot_corrupt");
  { ServeCore seeded(test_options(dir)); }
  {
    std::ofstream out(dir + "/serve_model.txt");
    out << "mphpc-serve-model v1 7 0000000000000000\ngarbage body\n";
  }
  ServeCore core(test_options(dir));
  EXPECT_EQ(core.generation(), 0);  // reseeded from the --model file
  EXPECT_FALSE(core.bootstrap_note().empty());
  EXPECT_FALSE(core.degraded());
}

TEST(ServeCoreTest, BootstrapWithNoModelAnywhereThrows) {
  const std::string dir = fresh_dir("boot_nothing");
  ServeOptions options = test_options(dir);
  options.model_path.clear();
  EXPECT_THROW(ServeCore{options}, std::runtime_error);
}

TEST(ServeCoreTest, HandleLineServesPredictAndRejectsGarbage) {
  const std::string dir = fresh_dir("handle_line");
  ServeCore core(test_options(dir));
  const auto& s = shared_state();

  // A real predict line built from a profiled run.
  Request req = predict_request(s.profiles[0], "p1");
  const JsonValue good = JsonValue::parse(core.handle_request(req));
  EXPECT_TRUE(good.find("ok")->as_bool());
  EXPECT_EQ(good.find("id")->as_string(), "p1");
  ASSERT_EQ(good.find("rpv")->items().size(), arch::kNumSystems);
  EXPECT_FALSE(good.find("fallback")->as_bool());

  // Garbage must produce a structured reply, never a throw.
  const JsonValue bad = JsonValue::parse(core.handle_line("{{{nope"));
  EXPECT_FALSE(bad.find("ok")->as_bool());
  EXPECT_EQ(bad.find("code")->as_string(), "bad_request");
  const JsonValue worse = JsonValue::parse(core.handle_line(
      R"({"op":"predict","profile":{"app":"a","system":"quartz",)"
      R"("counters":{"total_instructions":0}}})"));
  EXPECT_EQ(worse.find("code")->as_string(), "bad_request");
}

TEST(ServeCoreTest, BatchRepliesLineUpWithRequests) {
  const std::string dir = fresh_dir("batch");
  ServeCore core(test_options(dir));
  const auto& s = shared_state();

  std::vector<Request> requests;
  requests.push_back(predict_request(s.profiles[0], "a"));
  requests.push_back(predict_request(s.profiles[1], "b"));
  Request stats;
  stats.op = Op::kStats;
  stats.id = "c";
  requests.push_back(stats);
  requests.push_back(predict_request(s.profiles[2], "d"));

  ThreadPool pool(2);
  const auto replies = core.handle_requests(requests, &pool);
  ASSERT_EQ(replies.size(), requests.size());
  const char* expected_ids[] = {"a", "b", "c", "d"};
  for (std::size_t i = 0; i < replies.size(); ++i) {
    const JsonValue v = JsonValue::parse(replies[i]);
    EXPECT_EQ(v.find("id")->as_string(), expected_ids[i]);
    EXPECT_TRUE(v.find("ok")->as_bool());
  }
  // Batched predictions are bit-identical to one-at-a-time ones.
  const JsonValue batched = JsonValue::parse(replies[0]);
  const JsonValue single =
      JsonValue::parse(core.handle_request(predict_request(s.profiles[0], "a")));
  for (std::size_t k = 0; k < arch::kNumSystems; ++k) {
    EXPECT_EQ(batched.find("rpv")->items()[k].as_number(),
              single.find("rpv")->items()[k].as_number());
  }
}

TEST(ServeCoreTest, RefitPublishesNewGenerationAndPersistsFirst) {
  const std::string dir = fresh_dir("refit");
  ServeCore core(test_options(dir));
  const auto& s = shared_state();
  const std::string fingerprint_before = core.fingerprint();

  EXPECT_FALSE(core.refit_pending());
  for (std::size_t i = 0; i < core.options().refit_every; ++i) {
    const auto& p = s.profiles[i % s.profiles.size()];
    const JsonValue ack = JsonValue::parse(core.handle_request(
        feedback_request(p, consistent_times(s.predictor, p), "f")));
    EXPECT_TRUE(ack.find("ok")->as_bool());
    EXPECT_FALSE(ack.find("degraded")->as_bool());
  }
  EXPECT_TRUE(core.refit_pending());
  ASSERT_TRUE(core.run_refit());
  EXPECT_FALSE(core.refit_pending());  // the pending count was consumed

  EXPECT_EQ(core.generation(), 1);
  EXPECT_NE(core.fingerprint(), fingerprint_before);
  // The published generation is already on disk (persist-before-swap).
  const auto stored = ModelStore(dir + "/serve_model.txt").load();
  ASSERT_TRUE(stored.has_value());
  EXPECT_EQ(stored->generation, 1);
  EXPECT_EQ(stored->fingerprint, core.fingerprint());

  const JsonValue st = JsonValue::parse(core.stats_reply("s"));
  EXPECT_EQ(st.find("counters")->find("refits")->as_number(), 1.0);
  EXPECT_EQ(st.find("generation")->as_number(), 1.0);
}

TEST(ServeCoreTest, RefitCompactsInsteadOfGrowingWithoutBound) {
  const std::string dir = fresh_dir("compact");
  ServeOptions options = test_options(dir);
  options.refit_rounds = 10;
  options.max_model_rounds = 25;  // seed has 20: one warm refit would bust it
  options.cold_rounds = 12;
  ServeCore core(options);
  const auto& s = shared_state();
  for (std::size_t i = 0; i < core.options().refit_every; ++i) {
    const auto& p = s.profiles[i % s.profiles.size()];
    (void)core.handle_request(
        feedback_request(p, consistent_times(s.predictor, p), "f"));
  }
  ASSERT_TRUE(core.run_refit());
  const JsonValue st = JsonValue::parse(core.stats_reply("s"));
  // A compaction rebuilt from scratch at cold_rounds, not 20+10.
  EXPECT_EQ(st.find("model_rounds")->as_number(), 12.0);
  EXPECT_EQ(core.generation(), 1);
}

// The acceptance-gate drift test: deterministic injection of corrupted
// completions must trip the detector within the configured window, force
// degraded (neutral) predictions, freeze refits, and recover after clean
// data flushes the window.
TEST(ServeCoreTest, DriftInjectionTripsFreezesRefitsAndRecovers) {
  const std::string dir = fresh_dir("drift");
  ServeCore core(test_options(dir));
  const auto& s = shared_state();
  const std::size_t window = core.options().drift.window;

  // Phase 1: corrupted completions. The trip must land exactly when the
  // window fills (observations 1..window-1 cannot transition).
  bool tripped = false;
  for (std::size_t i = 0; i < window; ++i) {
    const auto& p = s.profiles[i % s.profiles.size()];
    const JsonValue ack = JsonValue::parse(core.handle_request(
        feedback_request(p, drifted_times(), "bad")));
    tripped = ack.find("degraded")->as_bool();
    EXPECT_EQ(tripped, i + 1 == window) << "observation " << i + 1;
  }
  ASSERT_TRUE(tripped);
  EXPECT_TRUE(core.degraded());

  // Degraded predictions are neutral and flagged as fallbacks.
  const JsonValue fallback = JsonValue::parse(
      core.handle_request(predict_request(s.profiles[0], "p")));
  EXPECT_TRUE(fallback.find("fallback")->as_bool());
  for (const JsonValue& r : fallback.find("rpv")->items()) {
    EXPECT_DOUBLE_EQ(r.as_number(), 1.0);
  }

  // Refits are frozen while tripped, however much feedback accumulated.
  EXPECT_FALSE(core.refit_pending());
  EXPECT_FALSE(core.run_refit());
  EXPECT_EQ(core.generation(), 0);

  // Phase 2: clean completions shadow-scored against the frozen model
  // wash the window and recover the service.
  bool recovered = false;
  for (std::size_t i = 0; i < window && !recovered; ++i) {
    const auto& p = s.profiles[i % s.profiles.size()];
    const JsonValue ack = JsonValue::parse(core.handle_request(
        feedback_request(p, consistent_times(s.predictor, p), "good")));
    recovered = !ack.find("degraded")->as_bool();
  }
  EXPECT_TRUE(recovered);
  EXPECT_FALSE(core.degraded());
  const JsonValue st = JsonValue::parse(core.stats_reply("s"));
  EXPECT_EQ(st.find("drift")->find("trips")->as_number(), 1.0);
  EXPECT_EQ(st.find("drift")->find("recoveries")->as_number(), 1.0);

  // Healthy again: predictions flow and refits may resume.
  const JsonValue ok = JsonValue::parse(
      core.handle_request(predict_request(s.profiles[0], "p2")));
  EXPECT_FALSE(ok.find("fallback")->as_bool());
}

// The acceptance-gate isolation test: poisoned feedback for one app
// degrades that app's predictions to neutral while another app keeps
// real model output and the fleet-wide guard stays healthy.
TEST(ServeCoreTest, PerAppDriftTripLeavesOtherAppsHealthy) {
  const std::string dir = fresh_dir("per_app_drift");
  ServeOptions options = test_options(dir);
  options.drift_max_apps = 8;
  options.drift_app_window = 4;
  ServeCore core(options);
  const auto& s = shared_state();

  // profiles are app-major: [0..3] CoMD, [4..7] AMG (see shared_state).
  const auto& comd = s.profiles[0];
  const auto& amg = s.profiles[4];
  ASSERT_NE(comd.app, amg.app);

  bool tripped = false;
  for (int i = 0; i < 4; ++i) {
    const JsonValue ack = JsonValue::parse(
        core.handle_request(feedback_request(comd, drifted_times(), "bad")));
    tripped = ack.find("degraded")->as_bool();
  }
  ASSERT_TRUE(tripped);
  EXPECT_FALSE(core.degraded());  // the global guard stayed healthy

  // CoMD predictions fall back to neutral...
  const JsonValue a =
      JsonValue::parse(core.handle_request(predict_request(comd, "pa")));
  EXPECT_TRUE(a.find("fallback")->as_bool());
  for (const JsonValue& r : a.find("rpv")->items()) {
    EXPECT_DOUBLE_EQ(r.as_number(), 1.0);
  }
  // ...while AMG still gets real model output.
  const JsonValue b =
      JsonValue::parse(core.handle_request(predict_request(amg, "pb")));
  EXPECT_FALSE(b.find("fallback")->as_bool());

  const JsonValue st = JsonValue::parse(core.stats_reply("s"));
  EXPECT_EQ(st.find("drift")->find("apps_tripped")->as_number(), 1.0);
  ASSERT_EQ(st.find("drift")->find("tripped_apps")->items().size(), 1u);
  EXPECT_EQ(st.find("drift")->find("tripped_apps")->items()[0].as_string(),
            comd.app);
  EXPECT_GE(st.find("counters")->find("app_fallbacks")->as_number(), 1.0);

  // Clean feedback washes CoMD's small window and un-degrades just it.
  bool recovered = false;
  for (int i = 0; i < 8 && !recovered; ++i) {
    const JsonValue ack = JsonValue::parse(core.handle_request(
        feedback_request(comd, consistent_times(s.predictor, comd), "good")));
    recovered = !ack.find("degraded")->as_bool();
  }
  EXPECT_TRUE(recovered);
  const JsonValue after =
      JsonValue::parse(core.handle_request(predict_request(comd, "pc")));
  EXPECT_FALSE(after.find("fallback")->as_bool());
}

// Two cores on one state dir model two supervised workers sharing the
// store: the leader publishes a refit, the follower converges on it.
TEST(ServeCoreTest, FollowerConvergesOnLeaderPublish) {
  const std::string dir = fresh_dir("follow");
  const auto& s = shared_state();
  ServeOptions leader_options = test_options(dir);
  leader_options.use_lease = true;
  ServeOptions follower_options = leader_options;
  follower_options.worker_id = 1;

  ServeCore leader(leader_options);
  ServeCore follower(follower_options);
  EXPECT_EQ(follower.generation(), 0);
  EXPECT_FALSE(follower.follow_store());  // nothing new to pick up yet

  for (std::size_t i = 0; i < leader.options().refit_every; ++i) {
    const auto& p = s.profiles[i % s.profiles.size()];
    (void)leader.handle_request(
        feedback_request(p, consistent_times(s.predictor, p), "f"));
  }
  ASSERT_TRUE(leader.run_refit());
  ASSERT_EQ(leader.generation(), 1);

  EXPECT_TRUE(follower.follow_store());
  EXPECT_EQ(follower.generation(), 1);
  EXPECT_EQ(follower.fingerprint(), leader.fingerprint());
  EXPECT_FALSE(follower.follow_store());  // already converged

  // The follower serves from the leader's model immediately, and its
  // stats account for the reload and the lease plumbing.
  const JsonValue reply = JsonValue::parse(
      follower.handle_request(predict_request(s.profiles[0], "p")));
  EXPECT_TRUE(reply.find("ok")->as_bool());
  const JsonValue st = JsonValue::parse(follower.stats_reply("s"));
  EXPECT_TRUE(st.find("refit_lease")->find("enabled")->as_bool());
  EXPECT_EQ(st.find("counters")->find("reloads")->as_number(), 1.0);

  // A draining follower must not roll the store back to its generation.
  follower.flush();
  const auto header = ModelStore(dir + "/serve_model.txt").peek_header();
  ASSERT_TRUE(header.has_value());
  EXPECT_EQ(header->generation, 1);
}

TEST(ServeCoreTest, StatsReportFleetIdentityAndLanes) {
  const std::string dir = fresh_dir("stats_fleet");
  ServeOptions options = test_options(dir);
  options.worker_id = 3;
  options.restarts_observed = 2;
  ServeCore core(options);
  core.note_shed(Op::kFeedback);
  core.note_shed(Op::kPredict);
  core.note_lane_depths(5, 7);

  const JsonValue st = JsonValue::parse(core.stats_reply("s"));
  EXPECT_GE(st.find("uptime_s")->as_number(), 0.0);
  EXPECT_EQ(st.find("worker_id")->as_number(), 3.0);
  EXPECT_EQ(st.find("restarts_observed")->as_number(), 2.0);
  EXPECT_FALSE(st.find("refit_lease")->find("enabled")->as_bool());
  EXPECT_EQ(st.find("counters")->find("shed")->as_number(), 2.0);
  const JsonValue* lanes = st.find("lanes");
  ASSERT_NE(lanes, nullptr);
  EXPECT_EQ(lanes->find("predict")->find("depth")->as_number(), 5.0);
  EXPECT_EQ(lanes->find("predict")->find("shed")->as_number(), 1.0);
  EXPECT_EQ(lanes->find("feedback")->find("depth")->as_number(), 7.0);
  EXPECT_EQ(lanes->find("feedback")->find("shed")->as_number(), 1.0);
}

// ------------------------------------------------------ crash restart ----

// The acceptance-gate crash test: SIGKILL the serving process mid-refit
// (no cleanup of any kind runs), restart on the same state dir, and
// require the survivor store to verify byte-for-byte and serve.
TEST(ServeCrashTest, SigkillMidRefitRestartsFromLastPersistedModel) {
  const auto& s = shared_state();  // built BEFORE fork (threads, statics)
  const std::string dir = fresh_dir("crash");
  const std::string marker = dir + "/generation1.marker";

  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: refit in a tight loop so the parent's SIGKILL lands inside
    // the feedback->fit->persist->swap cycle, whatever the timing.
    ServeCore core(test_options(dir));
    long long seen = 0;
    for (long long iter = 0; iter < 1000000; ++iter) {
      for (std::size_t i = 0; i < core.options().refit_every; ++i) {
        const auto& p = s.profiles[i % s.profiles.size()];
        (void)core.handle_request(
            feedback_request(p, consistent_times(s.predictor, p), "f"));
      }
      (void)core.run_refit();
      if (core.generation() > seen) {
        seen = core.generation();
        if (seen == 1) {
          std::ofstream m(marker);
          m << "1\n";
        }
      }
    }
    _exit(0);
  }

  // Parent: wait until the child has published at least one refit, then
  // kill it without warning.
  while (!std::filesystem::exists(marker)) {
    int status = 0;
    ASSERT_EQ(waitpid(pid, &status, WNOHANG), 0) << "child exited early";
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(5));  // mid-cycle
  ASSERT_EQ(kill(pid, SIGKILL), 0);
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status));

  // The store must verify: header fingerprint byte-identical to the hash
  // of the body actually on disk (i.e. a complete, untorn model).
  const ModelStore store(dir + "/serve_model.txt");
  const auto stored = store.load();
  ASSERT_TRUE(stored.has_value());
  EXPECT_GE(stored->generation, 1);
  std::string text;
  {
    std::ifstream in(store.path());
    text.assign(std::istreambuf_iterator<char>(in), {});
  }
  const std::string body = text.substr(text.find('\n') + 1);
  EXPECT_EQ(stored->fingerprint, ModelStore::fingerprint_of(body));

  // A restart bootstraps from the survivor (not the seed model) and
  // serves predictions from it immediately.
  ServeCore restarted(test_options(dir));
  EXPECT_TRUE(restarted.bootstrap_note().empty());
  EXPECT_EQ(restarted.generation(), stored->generation);
  EXPECT_EQ(restarted.fingerprint(), stored->fingerprint);
  const JsonValue reply = JsonValue::parse(
      restarted.handle_request(predict_request(s.profiles[0], "after")));
  EXPECT_TRUE(reply.find("ok")->as_bool());
  EXPECT_FALSE(reply.find("fallback")->as_bool());
}

// -------------------------------------------------- concurrency stress ----

// TSan-lane stress: predicts, feedback, refits, and stats hammer one
// ServeCore concurrently, mirroring the daemon's batcher + refit + intake
// threads. Counters must reconcile exactly afterwards.
TEST(ServeStressTest, ConcurrentPredictFeedbackRefitAndStats) {
  const auto& s = shared_state();
  const std::string dir = fresh_dir("stress");
  ServeOptions options = test_options(dir);
  options.refit_every = 4;
  options.refit_rounds = 2;
  ServeCore core(options);
  ThreadPool pool(2);

  constexpr int kPredictThreads = 3;
  constexpr int kBatches = 25;
  std::atomic<long long> bad_replies{0};
  std::atomic<bool> stop{false};

  std::thread refitter([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      try {
        (void)core.run_refit(&pool);
      } catch (...) {
        bad_replies.fetch_add(1, std::memory_order_relaxed);
      }
      std::this_thread::yield();
    }
  });
  std::thread feeder([&] {
    for (int c = 0; c < kBatches; ++c) {
      for (const auto& p : s.profiles) {
        const std::string reply = core.handle_request(
            feedback_request(p, consistent_times(s.predictor, p), "f"));
        if (!JsonValue::parse(reply).find("ok")->as_bool()) {
          bad_replies.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
  });
  std::vector<std::thread> predictors;
  predictors.reserve(kPredictThreads);
  for (int t = 0; t < kPredictThreads; ++t) {
    predictors.emplace_back([&] {
      std::vector<Request> batch;
      for (std::size_t i = 0; i < s.profiles.size(); ++i) {
        batch.push_back(predict_request(s.profiles[i], "p"));
      }
      for (int c = 0; c < kBatches; ++c) {
        const auto replies = core.handle_requests(batch, &pool);
        for (const auto& reply : replies) {
          if (!JsonValue::parse(reply).find("ok")->as_bool()) {
            bad_replies.fetch_add(1, std::memory_order_relaxed);
          }
        }
        (void)core.stats_reply("s");
      }
    });
  }

  feeder.join();
  for (std::thread& p : predictors) p.join();
  // The refitter is asynchronous: on a loaded machine it can sit
  // descheduled for this whole few-ms stress and exit on `stop` without
  // ever observing refit_pending(). Every feedback is in and drift never
  // trips here, so a refit is pending — hold the stop (bounded, so a
  // genuine refit bug still fails below instead of hanging) until one
  // publishes.
  const auto refit_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (core.generation() == 0 &&
         std::chrono::steady_clock::now() < refit_deadline) {
    std::this_thread::yield();
  }
  stop.store(true);
  refitter.join();

  EXPECT_EQ(bad_replies.load(), 0);
  const JsonValue st = JsonValue::parse(core.stats_reply("final"));
  const auto* counters = st.find("counters");
  EXPECT_EQ(counters->find("predicts")->as_number(),
            static_cast<double>(kPredictThreads) * kBatches *
                static_cast<double>(s.profiles.size()));
  EXPECT_EQ(counters->find("feedbacks")->as_number(),
            static_cast<double>(kBatches) * static_cast<double>(s.profiles.size()));
  EXPECT_EQ(counters->find("request_errors")->as_number(), 0.0);
  EXPECT_GE(st.find("generation")->as_number(), 1.0)  // refits happened
      << core.stats_reply("final");
}

}  // namespace
}  // namespace mphpc::serve
