// Tests for src/arch: system catalog (Table I), counter name tables.
#include <gtest/gtest.h>

#include "arch/counter_names.hpp"
#include "arch/system_catalog.hpp"
#include "common/error.hpp"

namespace mphpc::arch {
namespace {

TEST(SystemId, ToStringRoundTrips) {
  for (const SystemId id : kAllSystems) {
    const auto parsed = parse_system(to_string(id));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, id);
  }
}

TEST(SystemId, ParseIsCaseInsensitive) {
  EXPECT_EQ(parse_system("Quartz"), SystemId::kQuartz);
  EXPECT_EQ(parse_system("LASSEN"), SystemId::kLassen);
}

TEST(SystemId, ParseRejectsUnknown) {
  EXPECT_FALSE(parse_system("summit").has_value());
  EXPECT_FALSE(parse_system("").has_value());
}

TEST(SystemCatalog, TableOneCpuParameters) {
  const SystemCatalog catalog;
  // Paper Table I values.
  EXPECT_EQ(catalog.get(SystemId::kQuartz).cpu.cores_per_node, 36);
  EXPECT_DOUBLE_EQ(catalog.get(SystemId::kQuartz).cpu.clock_ghz, 2.1);
  EXPECT_EQ(catalog.get(SystemId::kRuby).cpu.cores_per_node, 56);
  EXPECT_DOUBLE_EQ(catalog.get(SystemId::kRuby).cpu.clock_ghz, 2.2);
  EXPECT_EQ(catalog.get(SystemId::kLassen).cpu.cores_per_node, 44);
  EXPECT_DOUBLE_EQ(catalog.get(SystemId::kLassen).cpu.clock_ghz, 3.5);
  EXPECT_EQ(catalog.get(SystemId::kCorona).cpu.cores_per_node, 48);
  EXPECT_DOUBLE_EQ(catalog.get(SystemId::kCorona).cpu.clock_ghz, 2.8);
}

TEST(SystemCatalog, TableOneGpuConfiguration) {
  const SystemCatalog catalog;
  EXPECT_FALSE(catalog.get(SystemId::kQuartz).has_gpu());
  EXPECT_FALSE(catalog.get(SystemId::kRuby).has_gpu());
  ASSERT_TRUE(catalog.get(SystemId::kLassen).has_gpu());
  ASSERT_TRUE(catalog.get(SystemId::kCorona).has_gpu());
  EXPECT_EQ(catalog.get(SystemId::kLassen).gpu->per_node, 4);
  EXPECT_EQ(catalog.get(SystemId::kLassen).gpu->model, "NVIDIA V100");
  EXPECT_EQ(catalog.get(SystemId::kCorona).gpu->per_node, 8);
  EXPECT_EQ(catalog.get(SystemId::kCorona).gpu->model, "AMD MI50");
}

TEST(SystemCatalog, LookupByName) {
  const SystemCatalog catalog;
  EXPECT_EQ(catalog.get("lassen").id, SystemId::kLassen);
  EXPECT_THROW(catalog.get("frontier"), LookupError);
}

TEST(SystemCatalog, NamesMatchIds) {
  const SystemCatalog catalog;
  for (const SystemId id : kAllSystems) {
    EXPECT_EQ(catalog.get(id).name, to_string(id));
    EXPECT_EQ(catalog.get(id).id, id);
  }
}

TEST(SystemCatalog, AllSystemsHaveNodes) {
  const SystemCatalog catalog;
  for (const auto& sys : catalog.all()) {
    EXPECT_GE(sys.nodes, 2) << sys.name;
    EXPECT_GT(sys.cpu.mem_bw_gbs, 0.0) << sys.name;
    EXPECT_GT(sys.io_bw_gbs, 0.0) << sys.name;
  }
}

TEST(ArchitectureSpec, PeakFlopsMath) {
  const SystemCatalog catalog;
  const auto& quartz = catalog.get(SystemId::kQuartz);
  EXPECT_NEAR(quartz.cpu.peak_dp_gflops(), 36 * 2.1 * 16.0, 1e-9);
  // GPU systems' node peak includes devices.
  const auto& lassen = catalog.get(SystemId::kLassen);
  EXPECT_GT(lassen.peak_node_dp_gflops(),
            lassen.cpu.peak_dp_gflops() + 4 * 7.8e3 - 1.0);
}

TEST(CounterKind, ToStringRoundTrips) {
  for (const CounterKind kind : kAllCounterKinds) {
    const auto parsed = parse_counter_kind(to_string(kind));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, kind);
  }
}

TEST(CounterKind, ParseRejectsUnknown) {
  EXPECT_FALSE(parse_counter_kind("bogus_counter").has_value());
}

TEST(CounterNames, CpuUsesPapiPresets) {
  for (const SystemId id : kAllSystems) {
    EXPECT_EQ(counter_source_name(id, Device::kCpu, CounterKind::kBranchInstructions),
              "PAPI_BR_INS");
    EXPECT_EQ(counter_source_name(id, Device::kCpu, CounterKind::kLoadInstructions),
              "PAPI_LD_INS");
    EXPECT_EQ(counter_source_name(id, Device::kCpu, CounterKind::kMemStallCycles),
              "PAPI_MEM_SCY");
  }
}

TEST(CounterNames, ArithCounterIsPerMicroarchitecture) {
  EXPECT_EQ(counter_source_name(SystemId::kQuartz, Device::kCpu,
                                CounterKind::kIntArithInstructions),
            "bdw::ARITH");
  EXPECT_EQ(counter_source_name(SystemId::kRuby, Device::kCpu,
                                CounterKind::kIntArithInstructions),
            "clx::ARITH");
}

TEST(CounterNames, LassenGpuUsesCupti) {
  EXPECT_EQ(counter_source_name(SystemId::kLassen, Device::kGpu,
                                CounterKind::kBranchInstructions),
            "cf_executed");
  EXPECT_EQ(counter_source_name(SystemId::kLassen, Device::kGpu,
                                CounterKind::kSpFpInstructions),
            "flop_count_sp");
}

TEST(CounterNames, CoronaGpuUsesRocprofiler) {
  EXPECT_EQ(counter_source_name(SystemId::kCorona, Device::kGpu,
                                CounterKind::kMemStallCycles),
            "MemUnitStalled");
  EXPECT_NE(std::string(counter_source_name(SystemId::kCorona, Device::kGpu,
                                            CounterKind::kL2LoadMisses))
                .find("TCC_MISS"),
            std::string::npos);
}

TEST(CounterNames, CpuOnlySystemsHaveNoGpuCounters) {
  EXPECT_EQ(counter_source_name(SystemId::kQuartz, Device::kGpu,
                                CounterKind::kBranchInstructions),
            "-");
  EXPECT_EQ(counter_source_name(SystemId::kRuby, Device::kGpu,
                                CounterKind::kTotalInstructions),
            "-");
}

TEST(Device, ToString) {
  EXPECT_EQ(to_string(Device::kCpu), "cpu");
  EXPECT_EQ(to_string(Device::kGpu), "gpu");
}

}  // namespace
}  // namespace mphpc::arch
