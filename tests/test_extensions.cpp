// Tests for the extension features: the k-NN comparator model and
// permutation feature importance.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "core/permutation_importance.hpp"
#include "ml/gbt.hpp"
#include "ml/knn_regressor.hpp"
#include "ml/metrics.hpp"

namespace mphpc {
namespace {

struct Problem {
  ml::Matrix x;
  ml::Matrix y;
};

Problem make_problem(std::size_t n, std::uint64_t seed, double noise = 0.0) {
  Rng rng(seed);
  ml::Matrix x(n, 3);
  ml::Matrix y(n, 2);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < 3; ++c) x(r, c) = rng.uniform();
    y(r, 0) = 4.0 * x(r, 0) + noise * (rng.uniform() - 0.5);
    y(r, 1) = std::sin(5.0 * x(r, 1)) + noise * (rng.uniform() - 0.5);
  }
  return {std::move(x), std::move(y)};
}

// ------------------------------------------------------------------ k-NN ----

TEST(Knn, ExactNeighborDominatesPrediction) {
  const Problem p = make_problem(200, 1);
  ml::KnnRegressor model;
  model.fit(p.x, p.y);
  // Query with a training point: the inverse-distance weighting makes the
  // exact match dominate.
  const ml::Matrix pred = model.predict(p.x);
  for (std::size_t r = 0; r < 20; ++r) {
    EXPECT_NEAR(pred(r, 0), p.y(r, 0), 1e-6);
    EXPECT_NEAR(pred(r, 1), p.y(r, 1), 1e-6);
  }
}

TEST(Knn, SmoothFunctionApproximation) {
  const Problem train = make_problem(800, 2);
  const Problem test = make_problem(100, 3);
  ml::KnnRegressor model;
  model.fit(train.x, train.y);
  const double mae = ml::mean_absolute_error(test.y, model.predict(test.x));
  EXPECT_LT(mae, 0.25);
}

TEST(Knn, KOneIsNearestNeighbor) {
  ml::KnnOptions options;
  options.k = 1;
  ml::KnnRegressor model(options);
  ml::Matrix x(2, 1, {0.0, 10.0});
  ml::Matrix y(2, 1, {1.0, 2.0});
  model.fit(x, y);
  const ml::Matrix q(1, 1, {3.0});
  EXPECT_DOUBLE_EQ(model.predict(q)(0, 0), 1.0);
}

TEST(Knn, UniformWeightsAverageNeighbors) {
  ml::KnnOptions options;
  options.k = 2;
  options.weight_power = 0.0;
  ml::KnnRegressor model(options);
  ml::Matrix x(2, 1, {0.0, 1.0});
  ml::Matrix y(2, 1, {0.0, 10.0});
  model.fit(x, y);
  const ml::Matrix q(1, 1, {0.2});
  EXPECT_DOUBLE_EQ(model.predict(q)(0, 0), 5.0);
}

TEST(Knn, KLargerThanTrainingSetClamps) {
  ml::KnnOptions options;
  options.k = 100;
  ml::KnnRegressor model(options);
  const Problem p = make_problem(10, 4);
  model.fit(p.x, p.y);
  EXPECT_NO_THROW(model.predict(p.x));
}

TEST(Knn, UnfittedAndBadInputsThrow) {
  const ml::KnnRegressor model;
  EXPECT_THROW(model.predict(ml::Matrix(1, 3)), ContractViolation);
  ml::KnnOptions bad;
  bad.k = 0;
  ml::KnnRegressor invalid(bad);
  const Problem p = make_problem(10, 5);
  EXPECT_THROW(invalid.fit(p.x, p.y), ContractViolation);
}

// --------------------------------------------- permutation importance ----

TEST(PermutationImportance, RelevantFeaturesScoreHigher) {
  const Problem p = make_problem(400, 6);
  ml::GbtOptions options;
  options.n_rounds = 40;
  options.max_depth = 4;
  ml::GbtRegressor model(options);
  model.fit(p.x, p.y);
  const auto importances = core::permutation_importances(model, p.x, p.y);
  ASSERT_EQ(importances.size(), 3u);
  // x0 and x1 drive the outputs; x2 is noise.
  EXPECT_GT(importances[0], importances[2]);
  EXPECT_GT(importances[1], importances[2]);
  EXPECT_NEAR(importances[2], 0.0, 0.05);
}

TEST(PermutationImportance, ReportSortedAndNamed) {
  const Problem p = make_problem(300, 7);
  ml::GbtOptions options;
  options.n_rounds = 30;
  options.max_depth = 4;
  ml::GbtRegressor model(options);
  model.fit(p.x, p.y);
  const std::vector<std::string> names = {"x0", "x1", "noise"};
  const auto report = core::permutation_report(model, p.x, p.y, names);
  ASSERT_EQ(report.size(), 3u);
  for (std::size_t i = 1; i < report.size(); ++i) {
    EXPECT_GE(report[i - 1].importance, report[i].importance);
  }
  EXPECT_EQ(report[2].feature, "noise");
}

TEST(PermutationImportance, Deterministic) {
  const Problem p = make_problem(200, 8);
  ml::GbtOptions options;
  options.n_rounds = 20;
  options.max_depth = 3;
  ml::GbtRegressor model(options);
  model.fit(p.x, p.y);
  const auto a = core::permutation_importances(model, p.x, p.y);
  const auto b = core::permutation_importances(model, p.x, p.y);
  EXPECT_EQ(a, b);
}

TEST(PermutationImportance, UnfittedModelThrows) {
  const ml::GbtRegressor model;
  const Problem p = make_problem(20, 9);
  EXPECT_THROW(core::permutation_importances(model, p.x, p.y), ContractViolation);
}

}  // namespace
}  // namespace mphpc
