// Tests for tools/mphpc_lint.cpp: fixture files with known violations
// must produce exactly the expected rule hits, suppressions must silence
// them, and the shipped source tree must lint clean.
//
// The lint binary path and the repo root come in via compile definitions
// (MPHPC_LINT_BIN, MPHPC_SOURCE_ROOT) set in tests/CMakeLists.txt.
// Fixtures are generated at runtime under the test temp directory — they
// are never part of the repository, so the real-tree lint pass (the
// `lint.mphpc` ctest) cannot trip over them.
#include <gtest/gtest.h>

#include <sys/wait.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct LintResult {
  int exit_code = -1;
  std::string output;

  [[nodiscard]] int count(const std::string& needle) const {
    int n = 0;
    std::size_t pos = 0;
    while ((pos = output.find(needle, pos)) != std::string::npos) {
      ++n;
      pos += needle.size();
    }
    return n;
  }
};

/// Runs `mphpc_lint <root> <extra_args>` and captures stdout+stderr.
/// The capture file lives under the gtest temp dir — never under `root`,
/// which for RealTreeLintsClean is the actual source tree.
LintResult run_lint(const fs::path& root, const std::string& extra_args = "") {
  // One capture file per test: ctest runs the suite with -j, and a shared
  // path would be clobbered by concurrently running lint tests.
  const fs::path out_path =
      fs::path(::testing::TempDir()) /
      (std::string("lint_capture_") +
       ::testing::UnitTest::GetInstance()->current_test_info()->name() +
       ".txt");
  const std::string cmd = std::string(MPHPC_LINT_BIN) + " " + extra_args + " \"" +
                          root.string() + "\" > \"" + out_path.string() +
                          "\" 2>&1";
  const int status = std::system(cmd.c_str());
  LintResult result;
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  std::ifstream in(out_path);
  std::ostringstream ss;
  ss << in.rdbuf();
  result.output = ss.str();
  return result;
}

class LintTest : public ::testing::Test {
 protected:
  fs::path root_;

  void SetUp() override {
    root_ = fs::path(::testing::TempDir()) / "mphpc_lint_fixtures" /
            ::testing::UnitTest::GetInstance()->current_test_info()->name();
    fs::remove_all(root_);
    fs::create_directories(root_ / "src");
    fs::create_directories(root_ / "tools");
  }

  void TearDown() override { fs::remove_all(root_); }

  void write(const std::string& rel, const std::string& content) const {
    std::ofstream out(root_ / rel);
    out << content;
  }
};

TEST_F(LintTest, CleanFixtureExitsZero) {
  write("src/clean.hpp",
        "#pragma once\n"
        "namespace demo {\n"
        "inline double twice(double v) { return 2.0 * v; }\n"
        "}  // namespace demo\n");
  const LintResult r = run_lint(root_);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_EQ(r.count("violation"), 1);  // the "0 violation(s)" summary line
  EXPECT_NE(r.output.find("0 violation(s)"), std::string::npos) << r.output;
}

TEST_F(LintTest, FlagsBannedNondeterminism) {
  write("src/bad_rng.cpp",
        "#include <cstdlib>\n"
        "#include <random>\n"
        "int noisy() {\n"
        "  std::random_device rd;\n"
        "  srand(42);\n"
        "  return rand() + static_cast<int>(rd());\n"
        "}\n");
  const LintResult r = run_lint(root_);
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_EQ(r.count("[nondeterminism]"), 3) << r.output;
  EXPECT_NE(r.output.find("bad_rng.cpp:4:"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("bad_rng.cpp:5:"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("bad_rng.cpp:6:"), std::string::npos) << r.output;
}

TEST_F(LintTest, FlagsUnorderedIteration) {
  write("src/bad_iter.cpp",
        "#include <string>\n"
        "#include <unordered_map>\n"
        "#include <vector>\n"
        "std::vector<std::string> keys(\n"
        "    const std::unordered_map<std::string, int>& index) {\n"
        "  std::vector<std::string> out;\n"
        "  for (const auto& entry : index) out.push_back(entry.first);\n"
        "  return out;\n"
        "}\n");
  const LintResult r = run_lint(root_);
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_EQ(r.count("[unordered-iteration]"), 1) << r.output;
  EXPECT_NE(r.output.find("bad_iter.cpp:7:"), std::string::npos) << r.output;
}

TEST_F(LintTest, FlagsIoInLibraryButNotInTools) {
  const std::string io_code =
      "#include <cstdio>\n"
      "#include <iostream>\n"
      "void report(int n) {\n"
      "  std::cout << n;\n"
      "  printf(\"%d\", n);\n"
      "}\n";
  write("src/bad_io.cpp", io_code);
  write("tools/cli_io.cpp", io_code);  // tools/ owns process output
  const LintResult r = run_lint(root_);
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_EQ(r.count("[io-in-lib]"), 2) << r.output;
  EXPECT_EQ(r.count("cli_io.cpp"), 0) << r.output;
}

TEST_F(LintTest, FlagsRawNewAndDelete) {
  write("src/bad_own.cpp",
        "struct Blob { int v = 0; };\n"
        "int leaky() {\n"
        "  Blob* b = new Blob;\n"
        "  const int v = b->v;\n"
        "  delete b;\n"
        "  return v;\n"
        "}\n");
  const LintResult r = run_lint(root_);
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_EQ(r.count("[raw-new]"), 2) << r.output;
}

TEST_F(LintTest, DeletedFunctionsAreNotRawDelete) {
  write("src/fine.hpp",
        "#pragma once\n"
        "class NoCopy {\n"
        " public:\n"
        "  NoCopy(const NoCopy&) = delete;\n"
        "  NoCopy& operator=(const NoCopy&) = delete;\n"
        "};\n");
  const LintResult r = run_lint(root_);
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST_F(LintTest, FlagsMissingPragmaOnce) {
  write("src/guardless.hpp", "namespace demo { inline int one() { return 1; } }\n");
  const LintResult r = run_lint(root_);
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_EQ(r.count("[pragma-once]"), 1) << r.output;
}

TEST_F(LintTest, FlagsFloat) {
  write("src/bad_float.cpp", "float narrow(double v) { return (float)v; }\n");
  const LintResult r = run_lint(root_);
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_EQ(r.count("[no-float]"), 1) << r.output;  // one line, one report
}

TEST_F(LintTest, FlagsOversizedFunction) {
  std::string body = "int big() {\n  int acc = 0;\n";
  for (int i = 0; i < 40; ++i) body += "  acc += " + std::to_string(i) + ";\n";
  body += "  return acc;\n}\n";
  write("src/big_fn.cpp", body);
  const LintResult strict = run_lint(root_, "--max-function-lines=20");
  EXPECT_EQ(strict.exit_code, 1);
  EXPECT_EQ(strict.count("[function-size]"), 1) << strict.output;
  const LintResult lax = run_lint(root_, "--max-function-lines=100");
  EXPECT_EQ(lax.exit_code, 0) << lax.output;
}

TEST_F(LintTest, CommentsAndStringsDoNotTrip) {
  write("src/quoted.cpp",
        "#include <string>\n"
        "// rand() in a comment is fine, as is float and new\n"
        "/* std::cout << delete */\n"
        "std::string doc() { return \"call rand() and printf() on a float\"; }\n");
  const LintResult r = run_lint(root_);
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST_F(LintTest, LineSuppressionSilencesOneRule) {
  write("src/suppressed.cpp",
        "#include <cstdlib>\n"
        "int seeded() {\n"
        "  return rand();  // lint:allow nondeterminism -- fixture exception\n"
        "}\n");
  const LintResult r = run_lint(root_);
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST_F(LintTest, FileSuppressionSilencesWholeFile) {
  write("src/legacy.cpp",
        "// lint:allow-file raw-new,no-float\n"
        "float* make() { return new float(0.0f); }\n");
  const LintResult r = run_lint(root_);
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST_F(LintTest, SuppressionOfOneRuleKeepsOthers) {
  write("src/partial.cpp",
        "#include <cstdlib>\n"
        "// lint:allow-file nondeterminism\n"
        "int chaos() { return rand() + static_cast<int>(3.5f); }\n"
        "float narrow() { return 1.0f; }\n");
  const LintResult r = run_lint(root_);
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_EQ(r.count("[nondeterminism]"), 0) << r.output;
  EXPECT_EQ(r.count("[no-float]"), 1) << r.output;
}

TEST_F(LintTest, ListRulesEnumeratesAll) {
  const fs::path out_path = root_ / "rules.txt";
  const std::string cmd = std::string(MPHPC_LINT_BIN) + " --list-rules > \"" +
                          out_path.string() + "\"";
  ASSERT_EQ(std::system(cmd.c_str()), 0);
  std::ifstream in(out_path);
  std::vector<std::string> rules;
  std::string line;
  while (std::getline(in, line)) rules.push_back(line);
  const std::vector<std::string> expected = {
      "nondeterminism",          "unordered-iteration",
      "io-in-lib",               "raw-new",
      "pragma-once",             "no-float",
      "function-size",           "ref-capture-in-parallel",
      "lock-held-blocking-call", "contract-coverage",
      "raw-artifact-write",      "unordered-accumulation",
      "quantized-compare"};
  EXPECT_EQ(rules, expected);
}

TEST_F(LintTest, QuantizedCompareFlagsDoubleAgainstBinCode) {
  write("src/qc_bad.cpp",
        "#include <cstdint>\n"
        "#include <vector>\n"
        "bool bad(const std::vector<std::uint8_t>& codes, double threshold) {\n"
        "  return codes[0] <= threshold;\n"
        "}\n");
  const LintResult r = run_lint(root_);
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_EQ(r.count("[quantized-compare]"), 1) << r.output;
}

TEST_F(LintTest, QuantizedCompareAcceptsExplicitCastSite) {
  write("src/qc_ok.cpp",
        "#include <cstdint>\n"
        "#include <vector>\n"
        "bool ok(const std::vector<std::uint8_t>& codes, double threshold) {\n"
        "  return static_cast<double>(codes[0]) <= threshold;\n"
        "}\n"
        "bool same_type(std::uint8_t code, std::uint8_t cut) {\n"
        "  return code <= cut;  // uint8-vs-uint8 is the intended fast path\n"
        "}\n");
  const LintResult r = run_lint(root_);
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST_F(LintTest, ReportFlagDuplicatesFindingsToFile) {
  write("src/bad_float.cpp", "float narrow(double v) { return (float)v; }\n");
  const fs::path report = root_ / "report.txt";
  const LintResult r = run_lint(root_, "--report=\"" + report.string() + "\"");
  EXPECT_EQ(r.exit_code, 1);
  std::ifstream in(report);
  ASSERT_TRUE(in.good());
  std::ostringstream ss;
  ss << in.rdbuf();
  EXPECT_NE(ss.str().find("[no-float]"), std::string::npos) << ss.str();
  EXPECT_NE(ss.str().find("1 violation(s)"), std::string::npos) << ss.str();
}

TEST_F(LintTest, RealTreeLintsCleanAgainstBaseline) {
  // Mirrors the lint.mphpc ctest invocation: baselined findings are
  // warnings, anything new in the tree fails here first.
  const fs::path baseline =
      fs::path(MPHPC_SOURCE_ROOT) / "tools" / "lint_baseline.json";
  const LintResult r = run_lint(fs::path(MPHPC_SOURCE_ROOT),
                                "--baseline=\"" + baseline.string() + "\"");
  EXPECT_EQ(r.exit_code, 0) << r.output;
}


TEST_F(LintTest, AllowNextLineSuppresses) {
  write("src/next_line.cpp",
        "#include <cstdlib>\n"
        "int seeded() {\n"
        "  // lint:allow-next-line nondeterminism -- fixture exception\n"
        "  return rand();\n"
        "}\n");
  const LintResult r = run_lint(root_);
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST_F(LintTest, AllowNextLineOnlySilencesTheNextLine) {
  write("src/next_line_scope.cpp",
        "#include <cstdlib>\n"
        "int seeded() {\n"
        "  // lint:allow-next-line nondeterminism\n"
        "  int a = rand();\n"
        "  int b = rand();\n"
        "  return a + b;\n"
        "}\n");
  const LintResult r = run_lint(root_);
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_EQ(r.count("[nondeterminism]"), 1) << r.output;
  EXPECT_NE(r.output.find("next_line_scope.cpp:5:"), std::string::npos)
      << r.output;
}

TEST_F(LintTest, ReportCreatesParentDirectories) {
  write("src/bad_float.cpp", "float narrow(double v) { return (float)v; }\n");
  const fs::path report = root_ / "nested" / "deep" / "report.txt";
  const LintResult r = run_lint(root_, "--report=\"" + report.string() + "\"");
  EXPECT_EQ(r.exit_code, 1);
  std::ifstream in(report);
  ASSERT_TRUE(in.good()) << "report not created at " << report;
  std::ostringstream ss;
  ss << in.rdbuf();
  EXPECT_NE(ss.str().find("[no-float]"), std::string::npos) << ss.str();
}

TEST_F(LintTest, ReportUnwritablePathExitsTwo) {
  write("src/clean.hpp", "#pragma once\n");
  // A regular file where a parent directory would have to be created.
  write("blocker", "not a directory\n");
  const fs::path report = root_ / "blocker" / "sub" / "report.txt";
  const LintResult r = run_lint(root_, "--report=\"" + report.string() + "\"");
  EXPECT_EQ(r.exit_code, 2) << r.output;
  EXPECT_NE(r.output.find("cannot write report"), std::string::npos)
      << r.output;
}

TEST_F(LintTest, FlagsRefCaptureInParallel) {
  write("src/par_bad.cpp",
        "#include <cstddef>\n"
        "struct Pool { void parallel_chunks(int, int, int); };\n"
        "void tally(Pool& pool, std::size_t n) {\n"
        "  std::size_t hits = 0;\n"
        "  pool.parallel_chunks(0, n,\n"
        "      [&](std::size_t c, std::size_t lo, std::size_t hi) {\n"
        "        for (std::size_t i = lo; i < hi; ++i) hits += 1;\n"
        "      });\n"
        "}\n");
  const LintResult r = run_lint(root_);
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_EQ(r.count("[ref-capture-in-parallel]"), 1) << r.output;
  EXPECT_NE(r.output.find("par_bad.cpp:7:"), std::string::npos) << r.output;
}

TEST_F(LintTest, PerChunkCaptureIsSafe) {
  write("src/par_ok.cpp",
        "#include <cstddef>\n"
        "#include <vector>\n"
        "void tally(Pool& pool, std::size_t n) {\n"
        "  std::vector<std::size_t> part(9, 0);\n"
        "  pool.parallel_chunks(0, n,\n"
        "      [&](std::size_t c, std::size_t lo, std::size_t hi) {\n"
        "        for (std::size_t i = lo; i < hi; ++i) part[c] += 1;\n"
        "      });\n"
        "}\n");
  const LintResult r = run_lint(root_);
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST_F(LintTest, LockProtectedDoubleSumStillAccumulationHazard) {
  // The lock removes the data race (so no ref-capture finding) but the
  // summation order still depends on chunk arrival: unordered-accumulation.
  write("src/par_sum.cpp",
        "#include <cstddef>\n"
        "#include <mutex>\n"
        "void sum_all(Pool& pool, std::size_t n) {\n"
        "  double total = 0.0;\n"
        "  std::mutex m;\n"
        "  pool.parallel_chunks(0, n,\n"
        "      [&](std::size_t c, std::size_t lo, std::size_t hi) {\n"
        "        std::lock_guard<std::mutex> g(m);\n"
        "        total += 1.0;\n"
        "      });\n"
        "}\n");
  const LintResult r = run_lint(root_);
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_EQ(r.count("[unordered-accumulation]"), 1) << r.output;
  EXPECT_EQ(r.count("[ref-capture-in-parallel]"), 0) << r.output;
}

TEST_F(LintTest, IntegerAccumulatorUnderLockIsFine) {
  write("src/par_count.cpp",
        "#include <cstddef>\n"
        "#include <mutex>\n"
        "void count_all(Pool& pool, std::size_t n) {\n"
        "  std::size_t total = 0;\n"
        "  std::mutex m;\n"
        "  pool.parallel_chunks(0, n,\n"
        "      [&](std::size_t c, std::size_t lo, std::size_t hi) {\n"
        "        std::lock_guard<std::mutex> g(m);\n"
        "        total += 1;\n"
        "      });\n"
        "}\n");
  const LintResult r = run_lint(root_);
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST_F(LintTest, FlagsBlockingPoolCallUnderLock) {
  write("src/lock_wait.cpp",
        "#include <mutex>\n"
        "struct Pool { void wait_idle(); };\n"
        "void drain(Pool& pool, std::mutex& m) {\n"
        "  std::lock_guard<std::mutex> g(m);\n"
        "  pool.wait_idle();\n"
        "}\n");
  const LintResult r = run_lint(root_);
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_EQ(r.count("[lock-held-blocking-call]"), 1) << r.output;
  EXPECT_NE(r.output.find("lock_wait.cpp:5:"), std::string::npos) << r.output;
}

TEST_F(LintTest, LockReleasedBeforeWaitIsFine) {
  write("src/lock_scoped.cpp",
        "#include <mutex>\n"
        "struct Pool { void wait_idle(); };\n"
        "void drain(Pool& pool, std::mutex& m) {\n"
        "  {\n"
        "    std::lock_guard<std::mutex> g(m);\n"
        "  }\n"
        "  pool.wait_idle();\n"
        "}\n");
  const LintResult r = run_lint(root_);
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST_F(LintTest, ExplicitUnlockBeforeWaitIsFine) {
  write("src/lock_unlock.cpp",
        "#include <mutex>\n"
        "struct Pool { void wait_idle(); };\n"
        "void drain(Pool& pool, std::mutex& m) {\n"
        "  std::unique_lock<std::mutex> g(m);\n"
        "  g.unlock();\n"
        "  pool.wait_idle();\n"
        "}\n");
  const LintResult r = run_lint(root_);
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST_F(LintTest, FlagsCvWaitHoldingOtherMutex) {
  write("src/cv_wrong.cpp",
        "#include <condition_variable>\n"
        "#include <mutex>\n"
        "void wait_wrong(std::condition_variable& cv, std::mutex& a,\n"
        "                std::mutex& b) {\n"
        "  std::unique_lock<std::mutex> la(a);\n"
        "  std::unique_lock<std::mutex> lb(b);\n"
        "  cv.wait(lb);\n"
        "}\n");
  const LintResult r = run_lint(root_);
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_EQ(r.count("[lock-held-blocking-call]"), 1) << r.output;
}

TEST_F(LintTest, CvWaitWithOwnLockIsFine) {
  write("src/cv_right.cpp",
        "#include <condition_variable>\n"
        "#include <mutex>\n"
        "void wait_right(std::condition_variable& cv, std::mutex& a) {\n"
        "  std::unique_lock<std::mutex> la(a);\n"
        "  cv.wait(la);\n"
        "}\n");
  const LintResult r = run_lint(root_);
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST_F(LintTest, FlagsMissingContractsViaHeaderIndex) {
  write("src/store.hpp",
        "#pragma once\n"
        "#include <cstddef>\n"
        "class Store {\n"
        " public:\n"
        "  double sum(const double* xs, std::size_t n) const;\n"
        "};\n"
        "double peek(const double* xs);\n");
  write("src/store.cpp",
        "#include \"store.hpp\"\n"
        "double Store::sum(const double* xs, std::size_t n) const {\n"
        "  double acc = 0.0;\n"
        "  for (std::size_t i = 0; i < n; ++i) acc += xs[i];\n"
        "  return acc;\n"
        "}\n"
        "double peek(const double* xs) { return xs[0]; }\n");
  const LintResult r = run_lint(root_);
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_EQ(r.count("[contract-coverage]"), 2) << r.output;
  EXPECT_NE(r.output.find("Store::sum"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("'peek'"), std::string::npos) << r.output;
}

TEST_F(LintTest, ContractedDefinitionsPassCoverage) {
  write("src/store.hpp",
        "#pragma once\n"
        "#include <cstddef>\n"
        "class Store {\n"
        " public:\n"
        "  double sum(const double* xs, std::size_t n) const;\n"
        "};\n");
  write("src/store.cpp",
        "#include \"store.hpp\"\n"
        "double Store::sum(const double* xs, std::size_t n) const {\n"
        "  MPHPC_EXPECTS(n == 0 || xs != nullptr);\n"
        "  double acc = 0.0;\n"
        "  for (std::size_t i = 0; i < n; ++i) acc += xs[i];\n"
        "  return acc;\n"
        "}\n");
  const LintResult r = run_lint(root_);
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST_F(LintTest, FlagsRawArtifactWriteInSrcOnly) {
  const std::string writer_code =
      "#include <fstream>\n"
      "void dump() {\n"
      "  std::ofstream out(\"x.json\");\n"
      "  out << 1;\n"
      "}\n";
  write("src/writer.cpp", writer_code);
  write("tools/report_writer.cpp", writer_code);  // tools/ may write directly
  const LintResult r = run_lint(root_);
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_EQ(r.count("[raw-artifact-write]"), 1) << r.output;
  EXPECT_EQ(r.count("report_writer.cpp"), 0) << r.output;
}

TEST_F(LintTest, AtomicFileImplementationIsExempt) {
  fs::create_directories(root_ / "src" / "common");
  write("src/common/atomic_file.cpp",
        "#include <fstream>\n"
        "void atomic_write_text() { std::ofstream out(\"tmp\"); }\n");
  const LintResult r = run_lint(root_);
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST_F(LintTest, JsonReportMatchesSchema) {
  write("src/bad_float.cpp", "float narrow(double v) { return (float)v; }\n");
  const LintResult r = run_lint(root_, "--format=json");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("\"schema\":\"mphpc-lint-report-v1\""),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("\"files_scanned\":1"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("\"errors\":1"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("\"warnings\":0"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("\"per_rule\":{\"no-float\":{\"errors\":1"),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("\"rule\":\"no-float\""), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("\"severity\":\"error\""), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("\"file\":\"src/bad_float.cpp\""), std::string::npos)
      << r.output;
}

TEST_F(LintTest, JsonReportFileSelectedByExtension) {
  write("src/bad_float.cpp", "float narrow(double v) { return (float)v; }\n");
  const fs::path report = root_ / "lint.json";
  const LintResult r = run_lint(root_, "--report=\"" + report.string() + "\"");
  EXPECT_EQ(r.exit_code, 1);
  std::ifstream in(report);
  ASSERT_TRUE(in.good());
  std::ostringstream ss;
  ss << in.rdbuf();
  EXPECT_NE(ss.str().find("\"schema\":\"mphpc-lint-report-v1\""),
            std::string::npos)
      << ss.str();
}

TEST_F(LintTest, BaselineTurnsKnownFindingsIntoWarnings) {
  write("src/bad_float.cpp", "float narrow(double v) { return (float)v; }\n");
  write("baseline.json",
        "{\"schema\":\"mphpc-lint-baseline-v1\",\"entries\":["
        "{\"file\":\"src/bad_float.cpp\",\"rule\":\"no-float\",\"count\":1}]}\n");
  const LintResult r = run_lint(
      root_, "--baseline=\"" + (root_ / "baseline.json").string() + "\"");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_EQ(r.count("warning: [no-float]"), 1) << r.output;
  EXPECT_NE(r.output.find("0 violation(s), 1 baselined warning(s)"),
            std::string::npos)
      << r.output;
}

TEST_F(LintTest, FindingsBeyondBaselineCountAreErrors) {
  write("src/bad_float.cpp",
        "float narrow(double v) { return (float)v; }\n"
        "float widen(double v) { return (float)v; }\n");
  write("baseline.json",
        "{\"schema\":\"mphpc-lint-baseline-v1\",\"entries\":["
        "{\"file\":\"src/bad_float.cpp\",\"rule\":\"no-float\",\"count\":1}]}\n");
  const LintResult r = run_lint(
      root_, "--baseline=\"" + (root_ / "baseline.json").string() + "\"");
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_EQ(r.count("warning: [no-float]"), 1) << r.output;
  EXPECT_NE(r.output.find("1 violation(s), 1 baselined warning(s)"),
            std::string::npos)
      << r.output;
}

TEST_F(LintTest, StaleBaselineEntryFailsTheRatchet) {
  write("src/bad_float.cpp", "float narrow(double v) { return (float)v; }\n");
  write("baseline.json",
        "{\"schema\":\"mphpc-lint-baseline-v1\",\"entries\":["
        "{\"file\":\"src/bad_float.cpp\",\"rule\":\"no-float\",\"count\":2}]}\n");
  const LintResult r = run_lint(
      root_, "--baseline=\"" + (root_ / "baseline.json").string() + "\"");
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_EQ(r.count("[baseline-stale]"), 1) << r.output;
  EXPECT_NE(r.output.find("may only shrink"), std::string::npos) << r.output;
}

TEST_F(LintTest, WriteBaselineRoundTrips) {
  write("src/bad_float.cpp", "float narrow(double v) { return (float)v; }\n");
  const fs::path baseline = root_ / "generated_baseline.json";
  const LintResult w =
      run_lint(root_, "--write-baseline=\"" + baseline.string() + "\"");
  EXPECT_EQ(w.exit_code, 0) << w.output;
  EXPECT_NE(w.output.find("wrote baseline"), std::string::npos) << w.output;
  const LintResult r =
      run_lint(root_, "--baseline=\"" + baseline.string() + "\"");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_EQ(r.count("warning: [no-float]"), 1) << r.output;
}

TEST_F(LintTest, MissingBaselineFileExitsTwo) {
  write("src/clean.hpp", "#pragma once\n");
  const LintResult r = run_lint(
      root_, "--baseline=\"" + (root_ / "no_such.json").string() + "\"");
  EXPECT_EQ(r.exit_code, 2) << r.output;
  EXPECT_NE(r.output.find("cannot read baseline"), std::string::npos)
      << r.output;
}

TEST_F(LintTest, OnlySelectsSingleRule) {
  write("src/mixed.cpp",
        "#include <cstdlib>\n"
        "float chaos() { return (float)rand(); }\n");
  const LintResult only = run_lint(root_, "--only=no-float");
  EXPECT_EQ(only.exit_code, 1);
  EXPECT_EQ(only.count("[no-float]"), 1) << only.output;
  EXPECT_EQ(only.count("[nondeterminism]"), 0) << only.output;
  const LintResult disabled = run_lint(root_, "--disable=no-float");
  EXPECT_EQ(disabled.exit_code, 1);
  EXPECT_EQ(disabled.count("[no-float]"), 0) << disabled.output;
  EXPECT_EQ(disabled.count("[nondeterminism]"), 1) << disabled.output;
}

TEST_F(LintTest, UnknownRuleNameExitsTwo) {
  write("src/clean.hpp", "#pragma once\n");
  const LintResult r = run_lint(root_, "--only=definitely-not-a-rule");
  EXPECT_EQ(r.exit_code, 2) << r.output;
  EXPECT_NE(r.output.find("unknown rule"), std::string::npos) << r.output;
}

TEST_F(LintTest, ParallelScanMatchesSerialScan) {
  write("src/a_bad.cpp",
        "#include <cstdlib>\n"
        "int a() { return rand(); }\n");
  write("src/b_bad.cpp", "float b() { return 1.0f; }\n");
  write("src/c_bad.hpp", "namespace demo { inline int c() { return 1; } }\n");
  write("src/d_bad.cpp", "int* d() { return new int(0); }\n");
  const LintResult serial = run_lint(root_, "--jobs=1");
  const LintResult parallel = run_lint(root_, "--jobs=4");
  EXPECT_EQ(serial.exit_code, 1);
  EXPECT_EQ(serial.output, parallel.output);
}

}  // namespace
