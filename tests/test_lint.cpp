// Tests for tools/mphpc_lint.cpp: fixture files with known violations
// must produce exactly the expected rule hits, suppressions must silence
// them, and the shipped source tree must lint clean.
//
// The lint binary path and the repo root come in via compile definitions
// (MPHPC_LINT_BIN, MPHPC_SOURCE_ROOT) set in tests/CMakeLists.txt.
// Fixtures are generated at runtime under the test temp directory — they
// are never part of the repository, so the real-tree lint pass (the
// `lint.mphpc` ctest) cannot trip over them.
#include <gtest/gtest.h>

#include <sys/wait.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct LintResult {
  int exit_code = -1;
  std::string output;

  [[nodiscard]] int count(const std::string& needle) const {
    int n = 0;
    std::size_t pos = 0;
    while ((pos = output.find(needle, pos)) != std::string::npos) {
      ++n;
      pos += needle.size();
    }
    return n;
  }
};

/// Runs `mphpc_lint <root> <extra_args>` and captures stdout+stderr.
/// The capture file lives under the gtest temp dir — never under `root`,
/// which for RealTreeLintsClean is the actual source tree.
LintResult run_lint(const fs::path& root, const std::string& extra_args = "") {
  const fs::path out_path = fs::path(::testing::TempDir()) / "lint_capture.txt";
  const std::string cmd = std::string(MPHPC_LINT_BIN) + " " + extra_args + " \"" +
                          root.string() + "\" > \"" + out_path.string() +
                          "\" 2>&1";
  const int status = std::system(cmd.c_str());
  LintResult result;
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  std::ifstream in(out_path);
  std::ostringstream ss;
  ss << in.rdbuf();
  result.output = ss.str();
  return result;
}

class LintTest : public ::testing::Test {
 protected:
  fs::path root_;

  void SetUp() override {
    root_ = fs::path(::testing::TempDir()) / "mphpc_lint_fixtures" /
            ::testing::UnitTest::GetInstance()->current_test_info()->name();
    fs::remove_all(root_);
    fs::create_directories(root_ / "src");
    fs::create_directories(root_ / "tools");
  }

  void TearDown() override { fs::remove_all(root_); }

  void write(const std::string& rel, const std::string& content) const {
    std::ofstream out(root_ / rel);
    out << content;
  }
};

TEST_F(LintTest, CleanFixtureExitsZero) {
  write("src/clean.hpp",
        "#pragma once\n"
        "namespace demo {\n"
        "inline double twice(double v) { return 2.0 * v; }\n"
        "}  // namespace demo\n");
  const LintResult r = run_lint(root_);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_EQ(r.count("violation"), 1);  // the "0 violation(s)" summary line
  EXPECT_NE(r.output.find("0 violation(s)"), std::string::npos) << r.output;
}

TEST_F(LintTest, FlagsBannedNondeterminism) {
  write("src/bad_rng.cpp",
        "#include <cstdlib>\n"
        "#include <random>\n"
        "int noisy() {\n"
        "  std::random_device rd;\n"
        "  srand(42);\n"
        "  return rand() + static_cast<int>(rd());\n"
        "}\n");
  const LintResult r = run_lint(root_);
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_EQ(r.count("[nondeterminism]"), 3) << r.output;
  EXPECT_NE(r.output.find("bad_rng.cpp:4:"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("bad_rng.cpp:5:"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("bad_rng.cpp:6:"), std::string::npos) << r.output;
}

TEST_F(LintTest, FlagsUnorderedIteration) {
  write("src/bad_iter.cpp",
        "#include <string>\n"
        "#include <unordered_map>\n"
        "#include <vector>\n"
        "std::vector<std::string> keys(\n"
        "    const std::unordered_map<std::string, int>& index) {\n"
        "  std::vector<std::string> out;\n"
        "  for (const auto& entry : index) out.push_back(entry.first);\n"
        "  return out;\n"
        "}\n");
  const LintResult r = run_lint(root_);
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_EQ(r.count("[unordered-iteration]"), 1) << r.output;
  EXPECT_NE(r.output.find("bad_iter.cpp:7:"), std::string::npos) << r.output;
}

TEST_F(LintTest, FlagsIoInLibraryButNotInTools) {
  const std::string io_code =
      "#include <cstdio>\n"
      "#include <iostream>\n"
      "void report(int n) {\n"
      "  std::cout << n;\n"
      "  printf(\"%d\", n);\n"
      "}\n";
  write("src/bad_io.cpp", io_code);
  write("tools/cli_io.cpp", io_code);  // tools/ owns process output
  const LintResult r = run_lint(root_);
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_EQ(r.count("[io-in-lib]"), 2) << r.output;
  EXPECT_EQ(r.count("cli_io.cpp"), 0) << r.output;
}

TEST_F(LintTest, FlagsRawNewAndDelete) {
  write("src/bad_own.cpp",
        "struct Blob { int v = 0; };\n"
        "int leaky() {\n"
        "  Blob* b = new Blob;\n"
        "  const int v = b->v;\n"
        "  delete b;\n"
        "  return v;\n"
        "}\n");
  const LintResult r = run_lint(root_);
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_EQ(r.count("[raw-new]"), 2) << r.output;
}

TEST_F(LintTest, DeletedFunctionsAreNotRawDelete) {
  write("src/fine.hpp",
        "#pragma once\n"
        "class NoCopy {\n"
        " public:\n"
        "  NoCopy(const NoCopy&) = delete;\n"
        "  NoCopy& operator=(const NoCopy&) = delete;\n"
        "};\n");
  const LintResult r = run_lint(root_);
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST_F(LintTest, FlagsMissingPragmaOnce) {
  write("src/guardless.hpp", "namespace demo { inline int one() { return 1; } }\n");
  const LintResult r = run_lint(root_);
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_EQ(r.count("[pragma-once]"), 1) << r.output;
}

TEST_F(LintTest, FlagsFloat) {
  write("src/bad_float.cpp", "float narrow(double v) { return (float)v; }\n");
  const LintResult r = run_lint(root_);
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_EQ(r.count("[no-float]"), 1) << r.output;  // one line, one report
}

TEST_F(LintTest, FlagsOversizedFunction) {
  std::string body = "int big() {\n  int acc = 0;\n";
  for (int i = 0; i < 40; ++i) body += "  acc += " + std::to_string(i) + ";\n";
  body += "  return acc;\n}\n";
  write("src/big_fn.cpp", body);
  const LintResult strict = run_lint(root_, "--max-function-lines=20");
  EXPECT_EQ(strict.exit_code, 1);
  EXPECT_EQ(strict.count("[function-size]"), 1) << strict.output;
  const LintResult lax = run_lint(root_, "--max-function-lines=100");
  EXPECT_EQ(lax.exit_code, 0) << lax.output;
}

TEST_F(LintTest, CommentsAndStringsDoNotTrip) {
  write("src/quoted.cpp",
        "#include <string>\n"
        "// rand() in a comment is fine, as is float and new\n"
        "/* std::cout << delete */\n"
        "std::string doc() { return \"call rand() and printf() on a float\"; }\n");
  const LintResult r = run_lint(root_);
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST_F(LintTest, LineSuppressionSilencesOneRule) {
  write("src/suppressed.cpp",
        "#include <cstdlib>\n"
        "int seeded() {\n"
        "  return rand();  // lint:allow nondeterminism -- fixture exception\n"
        "}\n");
  const LintResult r = run_lint(root_);
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST_F(LintTest, FileSuppressionSilencesWholeFile) {
  write("src/legacy.cpp",
        "// lint:allow-file raw-new,no-float\n"
        "float* make() { return new float(0.0f); }\n");
  const LintResult r = run_lint(root_);
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST_F(LintTest, SuppressionOfOneRuleKeepsOthers) {
  write("src/partial.cpp",
        "#include <cstdlib>\n"
        "// lint:allow-file nondeterminism\n"
        "int chaos() { return rand() + static_cast<int>(3.5f); }\n"
        "float narrow() { return 1.0f; }\n");
  const LintResult r = run_lint(root_);
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_EQ(r.count("[nondeterminism]"), 0) << r.output;
  EXPECT_EQ(r.count("[no-float]"), 1) << r.output;
}

TEST_F(LintTest, ListRulesEnumeratesAll) {
  const fs::path out_path = root_ / "rules.txt";
  const std::string cmd = std::string(MPHPC_LINT_BIN) + " --list-rules > \"" +
                          out_path.string() + "\"";
  ASSERT_EQ(std::system(cmd.c_str()), 0);
  std::ifstream in(out_path);
  std::vector<std::string> rules;
  std::string line;
  while (std::getline(in, line)) rules.push_back(line);
  const std::vector<std::string> expected = {
      "nondeterminism", "unordered-iteration", "io-in-lib", "raw-new",
      "pragma-once",    "no-float",            "function-size"};
  EXPECT_EQ(rules, expected);
}

TEST_F(LintTest, ReportFlagDuplicatesFindingsToFile) {
  write("src/bad_float.cpp", "float narrow(double v) { return (float)v; }\n");
  const fs::path report = root_ / "report.txt";
  const LintResult r = run_lint(root_, "--report=\"" + report.string() + "\"");
  EXPECT_EQ(r.exit_code, 1);
  std::ifstream in(report);
  ASSERT_TRUE(in.good());
  std::ostringstream ss;
  ss << in.rdbuf();
  EXPECT_NE(ss.str().find("[no-float]"), std::string::npos) << ss.str();
  EXPECT_NE(ss.str().find("1 violation(s)"), std::string::npos) << ss.str();
}

TEST_F(LintTest, RealTreeLintsClean) {
  const LintResult r = run_lint(fs::path(MPHPC_SOURCE_ROOT));
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

}  // namespace
