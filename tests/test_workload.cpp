// Tests for src/workload: the Table II catalog, inputs, run configs.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "arch/system_catalog.hpp"
#include "common/error.hpp"
#include "workload/app_catalog.hpp"
#include "workload/input_config.hpp"
#include "workload/run_config.hpp"

namespace mphpc::workload {
namespace {

TEST(AppCatalog, HasTwentyApplications) {
  const AppCatalog catalog;
  EXPECT_EQ(catalog.size(), 20u);
}

TEST(AppCatalog, ElevenAppsHaveGpuSupport) {
  const AppCatalog catalog;
  int gpu = 0;
  for (const auto& app : catalog.all()) gpu += app.gpu_support ? 1 : 0;
  EXPECT_EQ(gpu, 11);  // paper: eleven of twenty
}

TEST(AppCatalog, MlAppsAreMarkedPython) {
  const AppCatalog catalog;
  for (const auto name : {"CANDLE", "CosmoFlow", "miniGAN", "DeepCam"}) {
    EXPECT_TRUE(catalog.get(name).python_stack) << name;
  }
  EXPECT_FALSE(catalog.get("CoMD").python_stack);
}

TEST(AppCatalog, NamesAreUnique) {
  const AppCatalog catalog;
  std::set<std::string> names;
  for (const auto& app : catalog.all()) names.insert(app.name);
  EXPECT_EQ(names.size(), catalog.size());
}

TEST(AppCatalog, AllMixesValid) {
  const AppCatalog catalog;
  for (const auto& app : catalog.all()) {
    EXPECT_TRUE(app.cpu_mix.valid()) << app.name;
    EXPECT_TRUE(app.gpu_mix.valid()) << app.name;
    EXPECT_GT(app.base_ginsts, 0.0) << app.name;
    EXPECT_GT(app.working_set_mib, 0.0) << app.name;
    EXPECT_GE(app.locality, 0.0) << app.name;
    EXPECT_LE(app.locality, 1.0) << app.name;
  }
}

TEST(AppCatalog, GpuAppsHaveOffloadParameters) {
  const AppCatalog catalog;
  for (const auto& app : catalog.all()) {
    if (app.gpu_support) {
      EXPECT_GT(app.gpu_offload, 0.0) << app.name;
      EXPECT_GT(app.gpu_saturation, 0.0) << app.name;
      EXPECT_GT(app.gpu_mix.sum(), 0.0) << app.name;
    }
  }
}

TEST(AppCatalog, PythonAppsAreNoisier) {
  const AppCatalog catalog;
  double min_python = 1e9;
  double max_native = 0.0;
  for (const auto& app : catalog.all()) {
    if (app.python_stack) {
      min_python = std::min(min_python, app.noise_sigma);
    } else {
      max_native = std::max(max_native, app.noise_sigma);
    }
  }
  EXPECT_GT(min_python, max_native);  // the Fig. 5 effect's source
}

TEST(AppCatalog, LookupErrors) {
  const AppCatalog catalog;
  EXPECT_THROW(catalog.get("HPL"), LookupError);
  EXPECT_TRUE(catalog.contains("XSBench"));
  EXPECT_FALSE(catalog.contains("HPL"));
}

TEST(InstructionMix, SumAndOther) {
  const InstructionMix mix{.branch = 0.1, .load = 0.3, .store = 0.1,
                           .sp_fp = 0.1, .dp_fp = 0.1, .int_arith = 0.1};
  EXPECT_NEAR(mix.sum(), 0.8, 1e-12);
  EXPECT_NEAR(mix.other(), 0.2, 1e-12);
  EXPECT_TRUE(mix.valid());
}

TEST(InstructionMix, InvalidWhenOverOne) {
  const InstructionMix mix{.branch = 0.5, .load = 0.6, .store = 0.0,
                           .sp_fp = 0.0, .dp_fp = 0.0, .int_arith = 0.0};
  EXPECT_FALSE(mix.valid());
}

// ----------------------------------------------------------- input gen ----

TEST(InputConfig, GeneratesRequestedCount) {
  const AppCatalog catalog;
  const auto inputs = make_inputs(catalog.get("CoMD"), 47, 2024);
  EXPECT_EQ(inputs.size(), 47u);
}

TEST(InputConfig, Deterministic) {
  const AppCatalog catalog;
  const auto a = make_inputs(catalog.get("AMG"), 10, 1);
  const auto b = make_inputs(catalog.get("AMG"), 10, 1);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].scale, b[i].scale);
    EXPECT_EQ(a[i].seed, b[i].seed);
  }
}

TEST(InputConfig, DifferentSeedsDiffer) {
  const AppCatalog catalog;
  const auto a = make_inputs(catalog.get("AMG"), 5, 1);
  const auto b = make_inputs(catalog.get("AMG"), 5, 2);
  EXPECT_NE(a[0].scale, b[0].scale);
}

TEST(InputConfig, ScalesSpanWideRange) {
  const AppCatalog catalog;
  const auto inputs = make_inputs(catalog.get("Laghos"), 47, 2024);
  double lo = 1e9;
  double hi = 0.0;
  for (const auto& in : inputs) {
    lo = std::min(lo, in.scale);
    hi = std::max(hi, in.scale);
    EXPECT_GT(in.scale, 0.0);
  }
  EXPECT_GT(hi / lo, 3.0);  // roughly a 4x sweep with jitter
}

TEST(InputConfig, IdFormat) {
  const AppCatalog catalog;
  const auto inputs = make_inputs(catalog.get("CoMD"), 3, 1);
  EXPECT_EQ(inputs[2].id(), "CoMD/i02");
}

TEST(EffectiveSignature, DeterministicPerturbation) {
  const AppCatalog catalog;
  const auto& base = catalog.get("miniFE");
  const auto inputs = make_inputs(base, 3, 7);
  const AppSignature a = effective_signature(base, inputs[1]);
  const AppSignature b = effective_signature(base, inputs[1]);
  EXPECT_EQ(a.cpu_mix.branch, b.cpu_mix.branch);
  EXPECT_EQ(a.locality, b.locality);
}

TEST(EffectiveSignature, StaysValidAndBounded) {
  const AppCatalog catalog;
  for (const auto& app : catalog.all()) {
    for (const auto& input : make_inputs(app, 20, 99)) {
      const AppSignature sig = effective_signature(app, input);
      EXPECT_TRUE(sig.cpu_mix.valid()) << sig.name;
      EXPECT_TRUE(sig.gpu_mix.valid()) << sig.name;
      EXPECT_GE(sig.locality, 0.0);
      EXPECT_LE(sig.locality, 1.0);
      EXPECT_GE(sig.branch_entropy, 0.0);
      EXPECT_LE(sig.branch_entropy, 1.0);
    }
  }
}

TEST(EffectiveSignature, PerturbsDifferentInputsDifferently) {
  const AppCatalog catalog;
  const auto& base = catalog.get("XSBench");
  const auto inputs = make_inputs(base, 2, 7);
  const AppSignature a = effective_signature(base, inputs[0]);
  const AppSignature b = effective_signature(base, inputs[1]);
  EXPECT_NE(a.cpu_mix.branch, b.cpu_mix.branch);
}

TEST(EffectiveSignature, RejectsMismatchedApp) {
  const AppCatalog catalog;
  const auto inputs = make_inputs(catalog.get("CoMD"), 1, 7);
  EXPECT_THROW(effective_signature(catalog.get("AMG"), inputs[0]),
               ContractViolation);
}

// --------------------------------------------------------- run configs ----

TEST(RoundDown, PowerOfTwo) {
  EXPECT_EQ(round_down_pow2(1), 1);
  EXPECT_EQ(round_down_pow2(2), 2);
  EXPECT_EQ(round_down_pow2(3), 2);
  EXPECT_EQ(round_down_pow2(36), 32);
  EXPECT_EQ(round_down_pow2(56), 32);
  EXPECT_EQ(round_down_pow2(64), 64);
  EXPECT_EQ(round_down_pow2(127), 64);
}

TEST(RoundDown, Square) {
  EXPECT_EQ(round_down_square(1), 1);
  EXPECT_EQ(round_down_square(3), 1);
  EXPECT_EQ(round_down_square(4), 4);
  EXPECT_EQ(round_down_square(36), 36);
  EXPECT_EQ(round_down_square(48), 36);
  EXPECT_EQ(round_down_square(99), 81);
}

class RoundDownProperty : public ::testing::TestWithParam<int> {};

TEST_P(RoundDownProperty, Pow2Invariants) {
  const int n = GetParam();
  const int p = round_down_pow2(n);
  EXPECT_LE(p, n);
  EXPECT_GT(2 * p, n);  // largest such power
  EXPECT_EQ(p & (p - 1), 0);  // actually a power of two
}

TEST_P(RoundDownProperty, SquareInvariants) {
  const int n = GetParam();
  const int s = round_down_square(n);
  EXPECT_LE(s, n);
  const int r = static_cast<int>(std::sqrt(static_cast<double>(s)) + 0.5);
  EXPECT_EQ(r * r, s);
  EXPECT_GT((r + 1) * (r + 1), n);
}

INSTANTIATE_TEST_SUITE_P(SweepSmallCounts, RoundDownProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 36, 44, 48,
                                           56, 88, 96, 100, 112, 121));

TEST(RunConfig, OneCoreUsesOneRank) {
  const AppCatalog apps;
  const arch::SystemCatalog systems;
  const RunConfig rc = make_run_config(apps.get("CoMD"), systems.get("quartz"),
                                       ScaleClass::kOneCore);
  EXPECT_EQ(rc.ranks, 1);
  EXPECT_EQ(rc.nodes, 1);
  EXPECT_EQ(rc.cores, 1);
  EXPECT_FALSE(rc.uses_gpu);  // quartz has no GPUs
}

TEST(RunConfig, OneCoreGpuAppGetsOneGpu) {
  const AppCatalog apps;
  const arch::SystemCatalog systems;
  const RunConfig rc = make_run_config(apps.get("CoMD"), systems.get("lassen"),
                                       ScaleClass::kOneCore);
  EXPECT_EQ(rc.ranks, 1);
  EXPECT_EQ(rc.gpus, 1);
  EXPECT_TRUE(rc.uses_gpu);
}

TEST(RunConfig, OneNodeCpuRunUsesAllCores) {
  const AppCatalog apps;
  const arch::SystemCatalog systems;
  const RunConfig rc = make_run_config(apps.get("miniVite"), systems.get("ruby"),
                                       ScaleClass::kOneNode);
  EXPECT_EQ(rc.ranks, 56);
  EXPECT_EQ(rc.nodes, 1);
  EXPECT_EQ(rc.gpus, 0);
}

TEST(RunConfig, TwoNodeCpuRunDoubles) {
  const AppCatalog apps;
  const arch::SystemCatalog systems;
  const RunConfig rc = make_run_config(apps.get("miniVite"), systems.get("quartz"),
                                       ScaleClass::kTwoNodes);
  EXPECT_EQ(rc.ranks, 72);
  EXPECT_EQ(rc.nodes, 2);
}

TEST(RunConfig, GpuRunUsesOneRankPerDevice) {
  const AppCatalog apps;
  const arch::SystemCatalog systems;
  const RunConfig one = make_run_config(apps.get("CoMD"), systems.get("lassen"),
                                        ScaleClass::kOneNode);
  EXPECT_EQ(one.ranks, 4);
  EXPECT_EQ(one.gpus, 4);
  const RunConfig two = make_run_config(apps.get("CoMD"), systems.get("corona"),
                                        ScaleClass::kTwoNodes);
  EXPECT_EQ(two.ranks, 16);
  EXPECT_EQ(two.gpus, 16);
}

TEST(RunConfig, PowerOfTwoConstraintRoundsRanks) {
  const AppCatalog apps;
  const arch::SystemCatalog systems;
  ASSERT_EQ(apps.get("SWFFT").rank_constraint, RankConstraint::kPowerOfTwo);
  const RunConfig rc = make_run_config(apps.get("SWFFT"), systems.get("quartz"),
                                       ScaleClass::kOneNode);
  EXPECT_EQ(rc.ranks, 32);  // 36 cores -> 32 ranks
}

TEST(RunConfig, CpuOnlyAppOnGpuSystemUsesCpus) {
  const AppCatalog apps;
  const arch::SystemCatalog systems;
  const RunConfig rc = make_run_config(apps.get("SW4lite"), systems.get("lassen"),
                                       ScaleClass::kOneNode);
  EXPECT_FALSE(rc.uses_gpu);
  EXPECT_EQ(rc.ranks, 44);
}

TEST(ScaleClass, ToString) {
  EXPECT_EQ(to_string(ScaleClass::kOneCore), "1core");
  EXPECT_EQ(to_string(ScaleClass::kOneNode), "1node");
  EXPECT_EQ(to_string(ScaleClass::kTwoNodes), "2node");
}

}  // namespace
}  // namespace mphpc::workload
