// Tests for src/serve's fault-tolerance layer: the fault-injection seam
// (nth-occurrence arming, crash/hang/short-write actions, store
// integrity under an injected pre-publish crash) and the Supervisor
// process tree (restart-with-backoff, hung-worker watchdog, flap
// escalation, clean and signal-driven group drains).
#include <gtest/gtest.h>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "arch/system_catalog.hpp"
#include "common/shutdown.hpp"
#include "core/dataset.hpp"
#include "core/predictor.hpp"
#include "serve/fault_inject.hpp"
#include "serve/model_store.hpp"
#include "serve/protocol.hpp"
#include "serve/service.hpp"
#include "serve/supervisor.hpp"
#include "sim/runner.hpp"
#include "workload/app_catalog.hpp"

namespace mphpc::serve {
namespace {

// ------------------------------------------------------------ fixtures ----

struct ServeFixture {
  std::string model_path;
  std::vector<sim::RunProfile> profiles;
};

/// One small trained model + a few profiles, built once for the whole
/// suite (and, crucially, before any fork() — the trainer uses threads).
const ServeFixture& serve_fixture() {
  static const ServeFixture fixture = [] {
    const workload::AppCatalog apps;
    const arch::SystemCatalog systems;
    sim::CampaignOptions campaign;
    campaign.inputs_per_app = 2;
    const auto dataset =
        core::build_dataset(sim::run_campaign(apps, systems, campaign));

    core::CrossArchPredictor::Options options;
    options.gbt.n_rounds = 20;
    options.gbt.max_depth = 3;
    core::CrossArchPredictor predictor(options);
    predictor.train(dataset);

    ServeFixture f;
    f.model_path = ::testing::TempDir() + "/supervisor_seed_model.txt";
    predictor.save(f.model_path);

    const sim::Profiler profiler(41);
    const auto& sig = apps.get("CoMD");
    for (const auto& input : workload::make_inputs(sig, 2, 41)) {
      f.profiles.push_back(profiler.profile(sig, input,
                                            workload::ScaleClass::kOneNode,
                                            systems.get("quartz")));
    }
    return f;
  }();
  return fixture;
}

std::string fresh_dir(const std::string& tag) {
  const std::string dir = ::testing::TempDir() + "/supervisor_" + tag;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

ServeOptions store_test_options(const std::string& state_dir) {
  ServeOptions o;
  o.state_dir = state_dir;
  o.model_path = serve_fixture().model_path;
  o.refit_every = 8;
  o.min_refit_rows = 4;
  o.refit_rounds = 2;
  o.drift_max_apps = 0;
  return o;
}

Request feedback_request(const sim::RunProfile& profile, std::string id) {
  Request r;
  r.op = Op::kFeedback;
  r.id = std::move(id);
  r.profile = profile;
  r.times = {3.0, 2.0, 1.0, 2.5};
  return r;
}

std::string file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in), {});
}

// -------------------------------------------------------- fault inject ----

/// Every test leaves the process-wide injector disarmed: the singleton
/// outlives any one TEST, and a leaked arm would fire in a later one.
struct FaultInjectTest : ::testing::Test {
  void TearDown() override { FaultInjector::instance().disarm(); }
};

TEST_F(FaultInjectTest, FiresOnExactlyTheNthOccurrence) {
  auto& inj = FaultInjector::instance();
  inj.arm("short-write-mid-reply:3");
  EXPECT_TRUE(inj.armed());
  EXPECT_EQ(inj.at(FaultSite::kMidReply), FaultAction::kNone);
  EXPECT_EQ(inj.at(FaultSite::kMidReply), FaultAction::kNone);
  EXPECT_EQ(inj.at(FaultSite::kMidReply), FaultAction::kShortWrite);
  EXPECT_EQ(inj.at(FaultSite::kMidReply), FaultAction::kNone);  // fires once
  EXPECT_EQ(inj.hits(FaultSite::kMidReply), 4);
  // Other sites never fire, however often they are passed.
  EXPECT_EQ(inj.at(FaultSite::kAccept), FaultAction::kNone);
  EXPECT_EQ(inj.at(FaultSite::kPrePublish), FaultAction::kNone);
}

TEST_F(FaultInjectTest, UnarmedInjectorIsInertAndCountsNothing) {
  auto& inj = FaultInjector::instance();
  inj.disarm();
  EXPECT_FALSE(inj.armed());
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(fault_point(FaultSite::kAccept), FaultAction::kNone);
  }
  // The unarmed fast path must not even count — zero cost when unset.
  EXPECT_EQ(inj.hits(FaultSite::kAccept), 0);
}

TEST_F(FaultInjectTest, RejectsUnknownPointsAndBadCounts) {
  auto& inj = FaultInjector::instance();
  EXPECT_THROW(inj.arm("frobnicate"), std::invalid_argument);
  EXPECT_THROW(inj.arm(""), std::invalid_argument);
  EXPECT_THROW(inj.arm("crash-accept:0"), std::invalid_argument);
  EXPECT_THROW(inj.arm("crash-accept:-2"), std::invalid_argument);
  EXPECT_THROW(inj.arm("crash-accept:x"), std::invalid_argument);
  EXPECT_FALSE(inj.armed());
  inj.arm("crash-mid-refit");  // bare point name: nth defaults to 1
  EXPECT_TRUE(inj.armed());
}

TEST_F(FaultInjectTest, ShortWriteReturnsControlToTheCallSite) {
  FaultInjector::instance().arm("short-write-mid-reply:1");
  EXPECT_EQ(fault_point(FaultSite::kMidReply), FaultAction::kShortWrite);
  EXPECT_EQ(fault_point(FaultSite::kMidReply), FaultAction::kNone);
}

TEST_F(FaultInjectTest, CrashActionDiesWithoutUnwinding) {
  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    FaultInjector::instance().arm("crash-accept:1");
    (void)fault_point(FaultSite::kAccept);
    ::_exit(7);  // unreachable when the crash fires
  }
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status));
  EXPECT_EQ(WTERMSIG(status), SIGKILL);
}

// The acceptance-gate store-integrity test: a SIGKILL injected at the
// pre-publish fault point (after the refit computed a new model, before
// the store write) must leave the on-disk store BYTE-IDENTICAL to the
// pre-refit survivor — the torn-publish bug this seam exists to catch.
TEST_F(FaultInjectTest, CrashAtPrePublishLeavesStoreByteIdentical) {
  const auto& fx = serve_fixture();  // built before fork
  const std::string dir = fresh_dir("fault_prepublish");
  const std::string store_path = dir + "/serve_model.txt";

  { ServeCore seeded(store_test_options(dir)); }  // seed generation 0
  const std::string before = file_bytes(store_path);
  ASSERT_FALSE(before.empty());

  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    FaultInjector::instance().arm("crash-pre-publish:1");
    ServeCore core(store_test_options(dir));
    for (int i = 0; i < 8; ++i) {
      (void)core.handle_request(feedback_request(
          fx.profiles[static_cast<std::size_t>(i) % fx.profiles.size()], "f"));
    }
    (void)core.run_refit();  // dies at the fault point
    ::_exit(7);              // unreachable when the fault fires
  }
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status)) << "fault did not fire";
  EXPECT_EQ(WTERMSIG(status), SIGKILL);

  // Byte-identical: the aborted refit left no trace on disk.
  EXPECT_EQ(file_bytes(store_path), before);

  // And a restart bootstraps from the intact survivor and serves.
  ServeCore restarted(store_test_options(dir));
  EXPECT_EQ(restarted.generation(), 0);
  Request predict;
  predict.op = Op::kPredict;
  predict.id = "p";
  predict.profile = fx.profiles[0];
  EXPECT_NE(restarted.handle_request(predict).find("\"ok\":true"),
            std::string::npos);
}

// ---------------------------------------------------------- supervisor ----

struct EventRecord {
  Supervisor::Event event;
  int slot;
  long long detail;
};

/// Runs a Supervisor over toy worker bodies and records every lifecycle
/// event. The event hook runs on the supervisor's (single) thread, so no
/// locking is needed around `events`.
struct SupervisorHarness {
  SupervisorOptions options;
  std::vector<EventRecord> events;

  SupervisorHarness() {
    options.workers = 1;
    options.restart = {.max_attempts = 4,
                       .base_delay_s = 0.02,
                       .multiplier = 2.0,
                       .max_delay_s = 0.1,
                       .jitter = 0.0};
    options.heartbeat_timeout_s = 30.0;
    options.stable_after_s = 30.0;
  }

  int run(Supervisor::WorkerMain main) {
    Supervisor supervisor(options, std::move(main));
    supervisor.set_event_hook(
        [this](Supervisor::Event event, int slot, long long detail) {
          events.push_back({event, slot, detail});
        });
    return supervisor.run();
  }

  [[nodiscard]] long long count(Supervisor::Event event) const {
    long long n = 0;
    for (const EventRecord& r : events) n += r.event == event ? 1 : 0;
    return n;
  }

  [[nodiscard]] bool saw(Supervisor::Event event, long long detail) const {
    for (const EventRecord& r : events) {
      if (r.event == event && r.detail == detail) return true;
    }
    return false;
  }
};

/// A well-behaved worker: heartbeats steadily, drains on SIGTERM — the
/// same latch-driven lifecycle the real Server::run follows.
int loyal_worker(const WorkerEnv& env) {
  auto& latch = ShutdownLatch::instance();
  while (!latch.requested()) {
    (void)::write(env.heartbeat_fd, ".", 1);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return latch.exit_code();
}

TEST(SupervisorTest, RestartsCrashedWorkerWithGrowingBackoff) {
  SupervisorHarness h;
  const int rc = h.run([](const WorkerEnv& env) {
    // The first two incarnations crash; the third drains cleanly.
    return env.restarts < 2 ? 3 : 0;
  });
  EXPECT_EQ(rc, 0);
  EXPECT_EQ(h.count(Supervisor::Event::kSpawned), 3);
  EXPECT_EQ(h.count(Supervisor::Event::kEscalated), 0);
  EXPECT_TRUE(h.saw(Supervisor::Event::kSpawned, 2));  // incarnation count

  // Capped-exponential backoff: the second delay is no shorter.
  std::vector<long long> delays_ms;
  for (const EventRecord& r : h.events) {
    if (r.event == Supervisor::Event::kRestartScheduled) {
      delays_ms.push_back(r.detail);
    }
  }
  ASSERT_EQ(delays_ms.size(), 2u);
  EXPECT_GE(delays_ms[1], delays_ms[0]);
}

TEST(SupervisorTest, HungWorkerIsKilledAndRestarted) {
  SupervisorHarness h;
  h.options.heartbeat_timeout_s = 0.3;
  const int rc = h.run([](const WorkerEnv& env) {
    if (env.restarts == 0) {
      // Hang: never heartbeat. The watchdog must SIGKILL us.
      std::this_thread::sleep_for(std::chrono::seconds(60));
      return 9;
    }
    return 0;
  });
  EXPECT_EQ(rc, 0);
  EXPECT_EQ(h.count(Supervisor::Event::kHung), 1);
  EXPECT_EQ(h.count(Supervisor::Event::kSpawned), 2);
  EXPECT_EQ(h.count(Supervisor::Event::kEscalated), 0);
}

TEST(SupervisorTest, EscalatesWhenASlotFlapsPastTheBudget) {
  SupervisorHarness h;
  h.options.workers = 2;
  h.options.restart.max_attempts = 2;
  const int rc = h.run([](const WorkerEnv& env) {
    if (env.slot == 0) return 1;  // flaps forever
    return loyal_worker(env);     // healthy sibling, drains on SIGTERM
  });
  EXPECT_EQ(rc, 1);
  EXPECT_EQ(h.count(Supervisor::Event::kEscalated), 1);
  // The escalation took the healthy sibling down with SIGTERM too.
  EXPECT_TRUE(h.saw(Supervisor::Event::kDraining, SIGTERM));
}

TEST(SupervisorTest, CleanWorkerExitDrainsTheWholeGroup) {
  SupervisorHarness h;
  h.options.workers = 3;
  const int rc = h.run([](const WorkerEnv& env) {
    if (env.slot == 2) {
      // Models a worker whose client sent a shutdown request: it drains
      // and exits 0 — a fleet-wide instruction.
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
      return 0;
    }
    return loyal_worker(env);
  });
  EXPECT_EQ(rc, 0);
  EXPECT_EQ(h.count(Supervisor::Event::kEscalated), 0);
  EXPECT_TRUE(h.saw(Supervisor::Event::kDraining, 0));
  EXPECT_EQ(h.count(Supervisor::Event::kExited), 3);
}

TEST(SupervisorTest, SignalDrainReturns128PlusSignal) {
  SupervisorHarness h;
  h.options.workers = 2;
  std::thread tripper([] {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    // Same drain path as a real SIGTERM (the latch documents this).
    ShutdownLatch::instance().request(SIGTERM);
  });
  const int rc = h.run(loyal_worker);
  tripper.join();
  ShutdownLatch::instance().reset();  // do not leak the trip to later tests
  EXPECT_EQ(rc, 128 + SIGTERM);
  EXPECT_TRUE(h.saw(Supervisor::Event::kDraining, SIGTERM));
  EXPECT_EQ(h.count(Supervisor::Event::kExited), 2);
}

}  // namespace
}  // namespace mphpc::serve
