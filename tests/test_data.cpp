// Tests for src/data: Table, CSV round trips, transforms, splits.
#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "data/csv.hpp"
#include "data/split.hpp"
#include "data/table.hpp"
#include "data/transforms.hpp"

namespace mphpc::data {
namespace {

Table make_sample_table() {
  Table t;
  t.add_text_column("app", {"AMG", "CoMD", "SWFFT"});
  t.add_numeric_column("x", {1.0, 2.5, -3.0});
  t.add_numeric_column("y", {10.0, 20.0, 30.0});
  return t;
}

// ---------------------------------------------------------------- table ----

TEST(Table, BasicShape) {
  const Table t = make_sample_table();
  EXPECT_EQ(t.num_rows(), 3u);
  EXPECT_EQ(t.num_columns(), 3u);
  EXPECT_EQ(t.column_names(), (std::vector<std::string>{"app", "x", "y"}));
}

TEST(Table, ColumnTypes) {
  const Table t = make_sample_table();
  EXPECT_EQ(t.column_type("app"), ColumnType::kText);
  EXPECT_EQ(t.column_type("x"), ColumnType::kNumeric);
  EXPECT_TRUE(t.has_column("y"));
  EXPECT_FALSE(t.has_column("z"));
}

TEST(Table, AccessMismatchedTypeThrows) {
  const Table t = make_sample_table();
  EXPECT_THROW(t.numeric("app"), LookupError);
  EXPECT_THROW(t.text("x"), LookupError);
  EXPECT_THROW(t.numeric("missing"), LookupError);
}

TEST(Table, DuplicateColumnRejected) {
  Table t = make_sample_table();
  EXPECT_THROW(t.add_numeric_column("x"), ContractViolation);
}

TEST(Table, MismatchedLengthRejected) {
  Table t = make_sample_table();
  EXPECT_THROW(t.add_numeric_column("bad", {1.0}), ContractViolation);
}

TEST(Table, AppendRow) {
  Table t = make_sample_table();
  t.append_row(std::vector<double>{5.0, 50.0}, std::vector<std::string>{"miniFE"});
  EXPECT_EQ(t.num_rows(), 4u);
  EXPECT_EQ(t.text("app")[3], "miniFE");
  EXPECT_EQ(t.numeric("y")[3], 50.0);
}

TEST(Table, AppendRowWrongArityThrows) {
  Table t = make_sample_table();
  EXPECT_THROW(
      t.append_row(std::vector<double>{1.0}, std::vector<std::string>{"x"}),
      ContractViolation);
}

TEST(Table, SelectRows) {
  const Table t = make_sample_table();
  const std::vector<std::size_t> rows = {2, 0};
  const Table s = t.select_rows(rows);
  EXPECT_EQ(s.num_rows(), 2u);
  EXPECT_EQ(s.text("app")[0], "SWFFT");
  EXPECT_EQ(s.numeric("x")[1], 1.0);
}

TEST(Table, SelectRowsOutOfRangeThrows) {
  const Table t = make_sample_table();
  const std::vector<std::size_t> rows = {5};
  EXPECT_THROW(t.select_rows(rows), ContractViolation);
}

TEST(Table, SelectColumns) {
  const Table t = make_sample_table();
  const std::vector<std::string> cols = {"y", "app"};
  const Table s = t.select_columns(cols);
  EXPECT_EQ(s.column_names(), cols);
  EXPECT_EQ(s.num_rows(), 3u);
}

TEST(Table, FilterPredicate) {
  const Table t = make_sample_table();
  const auto rows = t.filter([&](std::size_t r) { return t.numeric("x")[r] > 0.0; });
  EXPECT_EQ(rows, (std::vector<std::size_t>{0, 1}));
}

TEST(Table, ToRowMajor) {
  const Table t = make_sample_table();
  const std::vector<std::string> cols = {"x", "y"};
  const auto m = t.to_row_major(cols);
  ASSERT_EQ(m.size(), 6u);
  EXPECT_EQ(m[0], 1.0);
  EXPECT_EQ(m[1], 10.0);
  EXPECT_EQ(m[4], -3.0);
  EXPECT_EQ(m[5], 30.0);
}

// ------------------------------------------------------------------ csv ----

TEST(Csv, RoundTripPreservesValues) {
  const Table t = make_sample_table();
  std::ostringstream out;
  write_csv(t, out);
  std::istringstream in(out.str());
  const Table r = read_csv(in);
  EXPECT_EQ(r.num_rows(), t.num_rows());
  EXPECT_EQ(r.column_names(), t.column_names());
  EXPECT_EQ(r.text("app"), t.text("app"));
  EXPECT_EQ(r.numeric("x"), t.numeric("x"));
}

TEST(Csv, QuotingRoundTrip) {
  Table t;
  t.add_text_column("s", {"a,b", "he said \"hi\"", "plain"});
  t.add_numeric_column("v", {1.0, 2.0, 3.0});
  std::ostringstream out;
  write_csv(t, out);
  std::istringstream in(out.str());
  const Table r = read_csv(in);
  EXPECT_EQ(r.text("s"), t.text("s"));
}

TEST(Csv, TypeInference) {
  std::istringstream in("name,value\nfoo,1.5\nbar,2\n");
  const Table t = read_csv(in);
  EXPECT_EQ(t.column_type("name"), ColumnType::kText);
  EXPECT_EQ(t.column_type("value"), ColumnType::kNumeric);
  EXPECT_EQ(t.numeric("value")[1], 2.0);
}

TEST(Csv, ExplicitTextColumnsOverrideInference) {
  std::istringstream in("id,value\n1,1.5\n2,2.5\n");
  const Table t = read_csv(in, {"id"});
  EXPECT_EQ(t.column_type("id"), ColumnType::kText);
  EXPECT_EQ(t.text("id")[0], "1");
}

TEST(Csv, TypeInferenceScansAllRows) {
  // A text column whose first cell looks numeric (a job id) must still
  // load as text — first-row-only inference used to throw on "j-17".
  std::istringstream in("id,value\n123,1.5\nj-17,2.5\n");
  const Table t = read_csv(in);
  EXPECT_EQ(t.column_type("id"), ColumnType::kText);
  EXPECT_EQ(t.text("id"), (std::vector<std::string>{"123", "j-17"}));
  EXPECT_EQ(t.column_type("value"), ColumnType::kNumeric);
}

TEST(Csv, StrayQuoteInUnquotedCellIsLiteral) {
  // RFC 4180: a quote only opens a quoted section at cell start; ab"cd
  // used to drop the quote and merge cells across the comma.
  std::istringstream in("s,t\nab\"cd,x\"y\n");
  const Table t = read_csv(in);
  EXPECT_EQ(t.text("s")[0], "ab\"cd");
  EXPECT_EQ(t.text("t")[0], "x\"y");
}

TEST(Csv, StrayQuoteRoundTrips) {
  Table t;
  t.add_text_column("s", {"ab\"cd", "\"quoted\"", "tail\""});
  std::ostringstream out;
  write_csv(t, out);
  std::istringstream in(out.str());
  const Table r = read_csv(in);
  EXPECT_EQ(r.text("s"), t.text("s"));
}

TEST(Csv, MalformedRowThrows) {
  std::istringstream in("a,b\n1\n");
  EXPECT_THROW(read_csv(in), ParseError);
}

TEST(Csv, MalformedRowReportsLineNumber) {
  std::istringstream in("a,b\n1,2\n\n3\n");
  try {
    read_csv(in);
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    // Line 4 of the input: header, good row, blank line, bad row.
    EXPECT_NE(std::string(e.what()).find("line 4"), std::string::npos) << e.what();
  }
}

TEST(Csv, UnterminatedQuoteThrows) {
  std::istringstream in("a\n\"unterminated\n");
  EXPECT_THROW(read_csv(in), ParseError);
}

TEST(Csv, UnterminatedQuoteReportsLineNumber) {
  std::istringstream in("a\nok\n\"unterminated\n");
  try {
    read_csv(in);
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos) << e.what();
  }
}

TEST(Csv, EmptyInputThrows) {
  std::istringstream in("");
  EXPECT_THROW(read_csv(in), ParseError);
}

TEST(Csv, FileRoundTrip) {
  const Table t = make_sample_table();
  const std::string path = ::testing::TempDir() + "/mphpc_test.csv";
  write_csv_file(t, path);
  const Table r = read_csv_file(path);
  EXPECT_EQ(r.num_rows(), t.num_rows());
  EXPECT_EQ(r.numeric("y"), t.numeric("y"));
}

TEST(Csv, UnreadablePathThrows) {
  EXPECT_THROW(read_csv_file("/nonexistent/dir/file.csv"), std::runtime_error);
}

// ----------------------------------------------------------- transforms ----

TEST(Standardizer, ZeroMeanUnitVariance) {
  std::vector<double> v = {1.0, 2.0, 3.0, 4.0, 5.0};
  Standardizer s;
  s.fit(v);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  s.transform(v);
  double mean = 0.0;
  double var = 0.0;
  for (const double x : v) mean += x;
  mean /= static_cast<double>(v.size());
  for (const double x : v) var += (x - mean) * (x - mean);
  var /= static_cast<double>(v.size());
  EXPECT_NEAR(mean, 0.0, 1e-12);
  EXPECT_NEAR(var, 1.0, 1e-12);
}

TEST(Standardizer, InverseTransformRoundTrips) {
  std::vector<double> v = {10.0, 20.0, 35.0};
  const std::vector<double> original = v;
  Standardizer s;
  s.fit(v);
  s.transform(v);
  s.inverse_transform(v);
  for (std::size_t i = 0; i < v.size(); ++i) EXPECT_NEAR(v[i], original[i], 1e-9);
}

TEST(Standardizer, ConstantColumnMapsToZero) {
  std::vector<double> v = {7.0, 7.0, 7.0};
  Standardizer s;
  s.fit(v);
  s.transform(v);
  for (const double x : v) EXPECT_EQ(x, 0.0);
}

TEST(Standardizer, SerializeRoundTrips) {
  std::vector<double> v = {1.5, 2.5, 10.0};
  Standardizer s;
  s.fit(v);
  const Standardizer r = Standardizer::deserialize(s.serialize());
  EXPECT_DOUBLE_EQ(r.mean(), s.mean());
  EXPECT_DOUBLE_EQ(r.stddev(), s.stddev());
}

TEST(Standardizer, UnfittedUseThrows) {
  const Standardizer s;
  std::vector<double> v = {1.0};
  EXPECT_THROW(s.transform(v), ContractViolation);
}

TEST(OneHot, EncodesLabels) {
  const std::vector<std::string> labels = {"b", "a", "b"};
  const std::vector<std::string> vocab = {"a", "b"};
  const auto cols = one_hot(labels, vocab);
  ASSERT_EQ(cols.size(), 2u);
  EXPECT_EQ(cols[0], (std::vector<double>{0.0, 1.0, 0.0}));
  EXPECT_EQ(cols[1], (std::vector<double>{1.0, 0.0, 1.0}));
}

TEST(OneHot, UnknownLabelThrows) {
  const std::vector<std::string> labels = {"z"};
  const std::vector<std::string> vocab = {"a", "b"};
  EXPECT_THROW(one_hot(labels, vocab), LookupError);
}

// --------------------------------------------------------------- splits ----

TEST(TrainTestSplit, SizesAndDisjointness) {
  const auto split = train_test_split(1000, 0.1, 42);
  EXPECT_EQ(split.test.size(), 100u);
  EXPECT_EQ(split.train.size(), 900u);
  std::set<std::size_t> all(split.train.begin(), split.train.end());
  all.insert(split.test.begin(), split.test.end());
  EXPECT_EQ(all.size(), 1000u);
}

TEST(TrainTestSplit, Deterministic) {
  const auto a = train_test_split(100, 0.2, 7);
  const auto b = train_test_split(100, 0.2, 7);
  EXPECT_EQ(a.test, b.test);
  const auto c = train_test_split(100, 0.2, 8);
  EXPECT_NE(a.test, c.test);
}

TEST(TrainTestSplit, RejectsBadFraction) {
  EXPECT_THROW(train_test_split(10, 0.0, 1), ContractViolation);
  EXPECT_THROW(train_test_split(10, 1.0, 1), ContractViolation);
}

class KFoldProperty : public ::testing::TestWithParam<int> {};

TEST_P(KFoldProperty, PartitionIsExact) {
  const int k = GetParam();
  const std::size_t n = 103;
  const auto folds = k_fold(n, k, 11);
  ASSERT_EQ(folds.size(), static_cast<std::size_t>(k));
  std::set<std::size_t> seen;
  for (const auto& fold : folds) {
    EXPECT_EQ(fold.train.size() + fold.validation.size(), n);
    for (const std::size_t v : fold.validation) {
      EXPECT_TRUE(seen.insert(v).second) << "index in two validation folds";
    }
    // train and validation are disjoint
    std::set<std::size_t> train(fold.train.begin(), fold.train.end());
    for (const std::size_t v : fold.validation) EXPECT_FALSE(train.count(v));
  }
  EXPECT_EQ(seen.size(), n);
}

TEST_P(KFoldProperty, FoldSizesBalanced) {
  const int k = GetParam();
  const auto folds = k_fold(100, k, 3);
  std::size_t lo = 1000;
  std::size_t hi = 0;
  for (const auto& fold : folds) {
    lo = std::min(lo, fold.validation.size());
    hi = std::max(hi, fold.validation.size());
  }
  EXPECT_LE(hi - lo, 1u);
}

INSTANTIATE_TEST_SUITE_P(FoldCounts, KFoldProperty, ::testing::Values(2, 3, 5, 10));

TEST(KFold, RejectsBadK) {
  EXPECT_THROW(k_fold(10, 1, 1), ContractViolation);
  EXPECT_THROW(k_fold(3, 4, 1), ContractViolation);
}

TEST(GroupHoldout, SplitsByLabel) {
  const std::vector<std::string> groups = {"a", "b", "a", "c", "b"};
  const auto split = group_holdout(groups, "b");
  EXPECT_EQ(split.test, (std::vector<std::size_t>{1, 4}));
  EXPECT_EQ(split.train, (std::vector<std::size_t>{0, 2, 3}));
}

TEST(GroupHoldout, MissingGroupThrows) {
  const std::vector<std::string> groups = {"a"};
  EXPECT_THROW(group_holdout(groups, "zzz"), ContractViolation);
}

TEST(RowsWhere, FindsMatches) {
  const std::vector<std::string> groups = {"x", "y", "x"};
  EXPECT_EQ(rows_where(groups, "x"), (std::vector<std::size_t>{0, 2}));
  EXPECT_TRUE(rows_where(groups, "zzz").empty());
}

}  // namespace
}  // namespace mphpc::data
