// Tests for src/prof: calling-context trees, the CCT builder, and the
// Hatchet-style dataframe operations.
#include <gtest/gtest.h>

#include "arch/system_catalog.hpp"
#include "common/error.hpp"
#include "prof/analysis.hpp"
#include "prof/cct.hpp"
#include "prof/cct_builder.hpp"
#include "prof/dataframe.hpp"
#include "sim/profiler.hpp"
#include "workload/app_catalog.hpp"

namespace mphpc::prof {
namespace {

using arch::CounterKind;

CallingContextTree small_tree() {
  // main -> {setup, loop -> {kernel, MPI_Allreduce}}
  CallingContextTree tree;
  const int setup = tree.add_child(tree.root(), "setup", FrameKind::kDriver);
  const int loop = tree.add_child(tree.root(), "loop", FrameKind::kDriver);
  const int kernel = tree.add_child(loop, "kernel", FrameKind::kCompute);
  const int reduce = tree.add_child(loop, "MPI_Allreduce", FrameKind::kComm);
  tree.node(setup).time_s = 1.0;
  tree.node(loop).time_s = 0.5;
  tree.node(kernel).time_s = 6.0;
  tree.node(reduce).time_s = 2.5;
  tree.node(kernel).counters[static_cast<std::size_t>(CounterKind::kTotalInstructions)] =
      1000.0;
  tree.node(reduce).counters[static_cast<std::size_t>(CounterKind::kTotalInstructions)] =
      200.0;
  return tree;
}

// ------------------------------------------------------------------ CCT ----

TEST(Cct, RootIsMain) {
  const CallingContextTree tree;
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_EQ(tree.node(CallingContextTree::root()).name, "main");
  EXPECT_EQ(tree.node(0).parent, -1);
}

TEST(Cct, AddChildLinksBothWays) {
  CallingContextTree tree;
  const int child = tree.add_child(tree.root(), "solve", FrameKind::kCompute);
  EXPECT_EQ(tree.node(child).parent, tree.root());
  ASSERT_EQ(tree.node(tree.root()).children.size(), 1u);
  EXPECT_EQ(tree.node(tree.root()).children[0], child);
}

TEST(Cct, AddChildRejectsBadParent) {
  CallingContextTree tree;
  EXPECT_THROW(tree.add_child(7, "x", FrameKind::kDriver), ContractViolation);
}

TEST(Cct, DepthComputation) {
  const CallingContextTree tree = small_tree();
  EXPECT_EQ(tree.depth(0), 0);
  EXPECT_EQ(tree.depth(1), 1);
  EXPECT_EQ(tree.depth(3), 2);  // kernel under loop
  EXPECT_EQ(tree.max_depth(), 2);
}

TEST(Cct, InclusiveTimeAggregatesSubtree) {
  const CallingContextTree tree = small_tree();
  EXPECT_DOUBLE_EQ(tree.inclusive_time(tree.root()), 10.0);
  const int loop = tree.find("loop")[0];
  EXPECT_DOUBLE_EQ(tree.inclusive_time(loop), 9.0);
}

TEST(Cct, InclusiveCounterAggregatesSubtree) {
  const CallingContextTree tree = small_tree();
  EXPECT_DOUBLE_EQ(
      tree.inclusive_counter(tree.root(), CounterKind::kTotalInstructions), 1200.0);
}

TEST(Cct, FindByNameAndKind) {
  const CallingContextTree tree = small_tree();
  EXPECT_EQ(tree.find("kernel").size(), 1u);
  EXPECT_TRUE(tree.find("nonexistent").empty());
  EXPECT_EQ(tree.find(FrameKind::kComm).size(), 1u);
  EXPECT_EQ(tree.find(FrameKind::kDriver).size(), 2u);
}

TEST(Cct, HotPathDescendsByInclusiveTime) {
  const CallingContextTree tree = small_tree();
  const auto path = tree.hot_path();
  ASSERT_EQ(path.size(), 3u);
  EXPECT_EQ(tree.node(path[0]).name, "main");
  EXPECT_EQ(tree.node(path[1]).name, "loop");    // 9.0 > setup's 1.0
  EXPECT_EQ(tree.node(path[2]).name, "kernel");  // 6.0 > reduce's 2.5
}

TEST(Cct, RenderContainsFramesAndPercentages) {
  const CallingContextTree tree = small_tree();
  const std::string out = tree.render();
  EXPECT_NE(out.find("main"), std::string::npos);
  EXPECT_NE(out.find("kernel"), std::string::npos);
  EXPECT_NE(out.find("%"), std::string::npos);
}

// ---------------------------------------------------------------- builder ----

class CctBuilderTest : public ::testing::Test {
 protected:
  workload::AppCatalog apps_;
  arch::SystemCatalog systems_;
  sim::Profiler profiler_{55};

  std::pair<sim::RunProfile, workload::AppSignature> run(const char* app_name,
                                                         const char* system,
                                                         workload::ScaleClass scale) {
    const auto& base = apps_.get(app_name);
    const auto inputs = workload::make_inputs(base, 1, 55);
    auto profile = profiler_.profile(base, inputs[0], scale, systems_.get(system));
    return {std::move(profile), workload::effective_signature(base, inputs[0])};
  }
};

TEST_F(CctBuilderTest, TreeTimeMatchesMeasuredWallTime) {
  const auto [profile, sig] = run("AMG", "quartz", workload::ScaleClass::kOneNode);
  const auto tree = build_cct(profile, sig);
  EXPECT_NEAR(tree.total_time(), profile.time_s, 1e-6 * profile.time_s);
}

TEST_F(CctBuilderTest, TreeCountersMatchProfileCounters) {
  for (const char* app : {"CoMD", "SWFFT", "XSBench"}) {
    const auto [profile, sig] = run(app, "ruby", workload::ScaleClass::kOneNode);
    const auto tree = build_cct(profile, sig);
    const auto totals = aggregate_counters(tree);
    for (std::size_t k = 0; k < totals.size(); ++k) {
      EXPECT_NEAR(totals[k], profile.counters[k],
                  1e-9 * std::max(1.0, profile.counters[k]))
          << app << " counter " << k;
    }
  }
}

TEST_F(CctBuilderTest, GpuRunsHaveLaunchAndDeviceFrames) {
  const auto [profile, sig] = run("CoMD", "lassen", workload::ScaleClass::kOneNode);
  ASSERT_EQ(profile.device, arch::Device::kGpu);
  const auto tree = build_cct(profile, sig);
  EXPECT_FALSE(tree.find(FrameKind::kGpuLaunch).empty());
  // Device kernels are children of launch frames.
  for (const int launch : tree.find(FrameKind::kGpuLaunch)) {
    ASSERT_EQ(tree.node(launch).children.size(), 1u);
    EXPECT_EQ(tree.node(tree.node(launch).children[0]).kind, FrameKind::kCompute);
  }
}

TEST_F(CctBuilderTest, CpuRunsHaveNoLaunchFrames) {
  const auto [profile, sig] = run("SW4lite", "corona", workload::ScaleClass::kOneNode);
  const auto tree = build_cct(profile, sig);
  EXPECT_TRUE(tree.find(FrameKind::kGpuLaunch).empty());
}

TEST_F(CctBuilderTest, SingleRankRunsHaveNoCommFrames) {
  const auto [profile, sig] = run("CoMD", "quartz", workload::ScaleClass::kOneCore);
  const auto tree = build_cct(profile, sig);
  EXPECT_TRUE(tree.find(FrameKind::kComm).empty());
}

TEST_F(CctBuilderTest, KernelNamesAreAppSpecific) {
  EXPECT_EQ(kernel_names("AMG")[0], "hypre_BoomerAMGSolve");
  EXPECT_EQ(kernel_names("XSBench")[0], "xs_lookup");
  EXPECT_EQ(kernel_names("UnknownApp")[0], "kernel_a");
  const auto [profile, sig] = run("miniFE", "quartz", workload::ScaleClass::kOneNode);
  const auto tree = build_cct(profile, sig);
  EXPECT_FALSE(tree.find("cg_matvec").empty());
}

TEST_F(CctBuilderTest, DeterministicPerRun) {
  const auto [profile, sig] = run("Laghos", "corona", workload::ScaleClass::kTwoNodes);
  const auto a = build_cct(profile, sig);
  const auto b = build_cct(profile, sig);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.node(static_cast<int>(i)).time_s, b.node(static_cast<int>(i)).time_s);
  }
}

// -------------------------------------------------------------- dataframe ----

TEST(DataFrame, ToTableShape) {
  const auto tree = small_tree();
  const auto table = to_table(tree);
  EXPECT_EQ(table.num_rows(), tree.size());
  EXPECT_TRUE(table.has_column("name"));
  EXPECT_TRUE(table.has_column("time_inc_s"));
  EXPECT_TRUE(table.has_column("total_instructions"));
  // Inclusive time of the root row equals the tree total.
  EXPECT_DOUBLE_EQ(table.numeric("time_inc_s")[0], 10.0);
}

TEST(DataFrame, FilterSquashPreservesTotals) {
  const auto tree = small_tree();
  // Keep only compute frames (plus the root).
  const auto squashed = filter_squash(
      tree, [](const CctNode& n) { return n.kind == FrameKind::kCompute; });
  EXPECT_DOUBLE_EQ(squashed.total_time(), tree.total_time());
  EXPECT_DOUBLE_EQ(squashed.total_counter(CounterKind::kTotalInstructions),
                   tree.total_counter(CounterKind::kTotalInstructions));
}

TEST(DataFrame, FilterSquashReparentsToKeptAncestor) {
  const auto tree = small_tree();
  const auto squashed = filter_squash(
      tree, [](const CctNode& n) { return n.kind == FrameKind::kCompute; });
  // Only root + kernel survive; kernel's parent ("loop") was removed, so
  // kernel re-parents to main.
  EXPECT_EQ(squashed.size(), 2u);
  EXPECT_EQ(squashed.node(1).name, "kernel");
  EXPECT_EQ(squashed.node(1).parent, CallingContextTree::root());
}

TEST(DataFrame, FilterSquashFoldsRemovedMetricsUpward) {
  const auto tree = small_tree();
  const auto squashed = filter_squash(
      tree, [](const CctNode& n) { return n.kind == FrameKind::kCompute; });
  // setup (1.0) + loop (0.5) + reduce (2.5) fold into main.
  EXPECT_DOUBLE_EQ(squashed.node(0).time_s, 4.0);
  EXPECT_DOUBLE_EQ(squashed.node(1).time_s, 6.0);
}

TEST(DataFrame, FlatProfileSortsByTime) {
  const auto tree = small_tree();
  const auto flat = flat_profile(tree);
  EXPECT_EQ(flat.text("name")[0], "kernel");
  const auto& times = flat.numeric("time_s");
  for (std::size_t i = 1; i < times.size(); ++i) EXPECT_LE(times[i], times[i - 1]);
}

TEST(DataFrame, FlatProfileAggregatesDuplicateNames) {
  CallingContextTree tree;
  const int a = tree.add_child(tree.root(), "kernel", FrameKind::kCompute);
  const int b = tree.add_child(tree.root(), "kernel", FrameKind::kCompute);
  tree.node(a).time_s = 2.0;
  tree.node(b).time_s = 3.0;
  const auto flat = flat_profile(tree);
  const auto& names = flat.text("name");
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (names[i] == "kernel") {
      EXPECT_DOUBLE_EQ(flat.numeric("time_s")[i], 5.0);
      EXPECT_DOUBLE_EQ(flat.numeric("calls")[i], 2.0);
    }
  }
}

TEST(DataFrame, TopFrames) {
  const auto tree = small_tree();
  const auto top = top_frames(tree, 2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].first, "kernel");
  EXPECT_DOUBLE_EQ(top[0].second, 6.0);
}

// --------------------------------------------------------------- analysis ----

TEST(Analysis, PhaseBreakdownSumsToOne) {
  const auto tree = small_tree();
  const auto phases = phase_breakdown(tree);
  EXPECT_NEAR(phases.compute + phases.comm + phases.io + phases.driver +
                  phases.gpu_launch,
              1.0, 1e-12);
  EXPECT_DOUBLE_EQ(phases.compute, 0.6);
  EXPECT_DOUBLE_EQ(phases.comm, 0.25);
}

TEST(Analysis, HotKernelShare) {
  const auto tree = small_tree();
  EXPECT_DOUBLE_EQ(hot_kernel_share(tree), 0.6);
}

TEST(Analysis, CommBoundAppShowsCommPhase) {
  const workload::AppCatalog apps;
  const arch::SystemCatalog systems;
  const sim::Profiler profiler(77);
  const auto& base = apps.get("Ember");
  const auto inputs = workload::make_inputs(base, 1, 77);
  const auto profile = profiler.profile(base, inputs[0],
                                        workload::ScaleClass::kTwoNodes,
                                        systems.get("quartz"));
  const auto tree =
      build_cct(profile, workload::effective_signature(base, inputs[0]));
  const auto phases = phase_breakdown(tree);
  EXPECT_GT(phases.comm, 0.15);  // a communication benchmark communicates
}

}  // namespace
}  // namespace mphpc::prof
