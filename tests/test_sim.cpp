// Tests for src/sim: performance model invariants, counter synthesis,
// profiler determinism, campaign runner.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "arch/system_catalog.hpp"
#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "sim/counter_synth.hpp"
#include "sim/perf_model.hpp"
#include "sim/profiler.hpp"
#include "sim/runner.hpp"
#include "workload/app_catalog.hpp"

namespace mphpc::sim {
namespace {

using arch::CounterKind;
using arch::Device;
using arch::SystemCatalog;
using arch::SystemId;
using workload::AppCatalog;
using workload::ScaleClass;

class PerfModelTest : public ::testing::Test {
 protected:
  AppCatalog apps_;
  SystemCatalog systems_;

  TimeBreakdown time_for(const char* app, const char* system, ScaleClass scale,
                         double input_scale = 1.0) const {
    const auto& sig = apps_.get(app);
    const auto rc = workload::make_run_config(sig, systems_.get(system), scale);
    return predict_time(sig, input_scale, rc, systems_.get(system));
  }
};

TEST_F(PerfModelTest, AllComponentsNonNegative) {
  for (const auto& app : apps_.all()) {
    for (const auto& sys : systems_.all()) {
      for (const ScaleClass scale : workload::kAllScaleClasses) {
        const auto rc = workload::make_run_config(app, sys, scale);
        const TimeBreakdown tb = predict_time(app, 1.0, rc, sys);
        EXPECT_GE(tb.compute_s, 0.0);
        EXPECT_GE(tb.memory_s, 0.0);
        EXPECT_GE(tb.branch_s, 0.0);
        EXPECT_GE(tb.gpu_s, 0.0);
        EXPECT_GE(tb.comm_s, 0.0);
        EXPECT_GE(tb.io_s, 0.0);
        EXPECT_GT(tb.total_s(), 0.0) << app.name << " on " << sys.name;
      }
    }
  }
}

TEST_F(PerfModelTest, TimeGrowsWithProblemScale) {
  for (const auto app : {"CoMD", "miniFE", "SW4lite"}) {
    const double t1 = time_for(app, "quartz", ScaleClass::kOneNode, 1.0).total_s();
    const double t4 = time_for(app, "quartz", ScaleClass::kOneNode, 4.0).total_s();
    EXPECT_GT(t4, t1) << app;
  }
}

TEST_F(PerfModelTest, OneNodeFasterThanOneCore) {
  for (const auto app : {"CoMD", "Laghos", "miniVite", "SWFFT"}) {
    const double core = time_for(app, "ruby", ScaleClass::kOneCore).total_s();
    const double node = time_for(app, "ruby", ScaleClass::kOneNode).total_s();
    EXPECT_LT(node, core) << app;
  }
}

TEST_F(PerfModelTest, GpuAppsBenefitFromGpuSystemsAtNodeScale) {
  // DL apps should run much faster on a V100 node than a Broadwell node.
  for (const auto app : {"CANDLE", "DeepCam", "miniGAN"}) {
    const double cpu = time_for(app, "quartz", ScaleClass::kOneNode).total_s();
    const double gpu = time_for(app, "lassen", ScaleClass::kOneNode).total_s();
    EXPECT_GT(cpu / gpu, 1.5) << app;
  }
}

TEST_F(PerfModelTest, BranchyAppsPayDivergenceOnGpu) {
  // XSBench (branchy, latency-bound) should gain less from the GPU than
  // a dense DL workload does.
  const double xs_gain = time_for("XSBench", "quartz", ScaleClass::kOneNode).total_s() /
                         time_for("XSBench", "lassen", ScaleClass::kOneNode).total_s();
  const double dl_gain = time_for("DeepCam", "quartz", ScaleClass::kOneNode).total_s() /
                         time_for("DeepCam", "lassen", ScaleClass::kOneNode).total_s();
  EXPECT_GT(dl_gain, xs_gain);
}

TEST_F(PerfModelTest, VectorizableCodeLikesAvx512) {
  // SW4lite vectorizes well; a Ruby node (AVX-512, 56 cores, 280 GB/s)
  // beats a Quartz node (AVX2, 36 cores, 130 GB/s) by far more than the
  // clock ratio. (Single-core runs of this size are latency-bound, where
  // the two Xeons are similar.)
  const double quartz = time_for("SW4lite", "quartz", ScaleClass::kOneNode).total_s();
  const double ruby = time_for("SW4lite", "ruby", ScaleClass::kOneNode).total_s();
  EXPECT_GT(quartz / ruby, 1.3);
}

TEST_F(PerfModelTest, CommunicationAppearsOnlyInParallelRuns) {
  const auto single = time_for("Ember", "quartz", ScaleClass::kOneCore);
  EXPECT_EQ(single.comm_s, 0.0);
  const auto node = time_for("Ember", "quartz", ScaleClass::kOneNode);
  EXPECT_GT(node.comm_s, 0.0);
}

TEST_F(PerfModelTest, CommBoundAppCommDominatesAtTwoNodes) {
  const auto tb = time_for("Ember", "quartz", ScaleClass::kTwoNodes);
  EXPECT_GT(tb.comm_s, tb.compute_s);
}

TEST_F(PerfModelTest, OffloadFractionOnlyOnGpuRuns) {
  const auto& comd = apps_.get("CoMD");
  const auto rc_gpu = workload::make_run_config(comd, systems_.get("lassen"),
                                                ScaleClass::kOneNode);
  EXPECT_GT(offload_fraction(comd, rc_gpu), 0.0);
  const auto rc_cpu = workload::make_run_config(comd, systems_.get("quartz"),
                                                ScaleClass::kOneNode);
  EXPECT_EQ(offload_fraction(comd, rc_cpu), 0.0);
}

TEST_F(PerfModelTest, TotalInstructionsScalesWithExponent) {
  const auto& app = apps_.get("Laghos");  // work_exponent 1.15
  const double w1 = total_instructions(app, 1.0);
  const double w2 = total_instructions(app, 2.0);
  EXPECT_NEAR(w2 / w1, std::pow(2.0, app.work_exponent), 1e-9);
}

TEST_F(PerfModelTest, MissRatesAreRates) {
  for (const auto& app : apps_.all()) {
    for (const auto& sys : systems_.all()) {
      const auto rc = workload::make_run_config(app, sys, ScaleClass::kOneNode);
      const MemoryBehavior m = cpu_memory_behavior(app, 1.0, rc, sys);
      for (const double rate : {m.l1_load_miss_rate, m.l1_store_miss_rate,
                                m.l2_load_miss_rate, m.l2_store_miss_rate}) {
        EXPECT_GE(rate, 0.0);
        EXPECT_LE(rate, 1.0);
      }
      EXPECT_GT(m.working_set_mib_per_rank, 0.0);
    }
  }
}

TEST_F(PerfModelTest, LowerLocalityMoreMisses) {
  const auto& xsbench = apps_.get("XSBench");   // locality 0.12
  const auto& nekbone = apps_.get("Nekbone");   // locality 0.78
  const auto& sys = systems_.get("quartz");
  const auto rc_x = workload::make_run_config(xsbench, sys, ScaleClass::kOneNode);
  const auto rc_n = workload::make_run_config(nekbone, sys, ScaleClass::kOneNode);
  const auto mx = cpu_memory_behavior(xsbench, 1.0, rc_x, sys);
  const auto mn = cpu_memory_behavior(nekbone, 1.0, rc_n, sys);
  EXPECT_GT(mx.l1_load_miss_rate, mn.l1_load_miss_rate);
  EXPECT_GT(mx.l2_load_miss_rate, mn.l2_load_miss_rate);
}

TEST_F(PerfModelTest, BiggerCachesFewerL2Misses) {
  // Corona's 256 MiB L3 should beat Quartz's 90 MiB for a mid-size set.
  const auto& app = apps_.get("miniFE");
  const auto rc_q = workload::make_run_config(app, systems_.get("quartz"),
                                              ScaleClass::kOneNode);
  const auto rc_c = workload::make_run_config(app, systems_.get("corona"),
                                              ScaleClass::kOneNode);
  const auto mq = cpu_memory_behavior(app, 1.0, rc_q, systems_.get("quartz"));
  const auto mc = cpu_memory_behavior(app, 1.0, rc_c, systems_.get("corona"));
  EXPECT_GT(mq.l2_load_miss_rate, mc.l2_load_miss_rate);
}

TEST_F(PerfModelTest, RejectsBadArguments) {
  const auto& app = apps_.get("CoMD");
  const auto& sys = systems_.get("quartz");
  auto rc = workload::make_run_config(app, sys, ScaleClass::kOneNode);
  EXPECT_THROW(predict_time(app, 0.0, rc, sys), mphpc::ContractViolation);
  rc.ranks = 0;
  EXPECT_THROW(predict_time(app, 1.0, rc, sys), mphpc::ContractViolation);
}

// ------------------------------------------------------------- counters ----

class CounterSynthTest : public ::testing::Test {
 protected:
  AppCatalog apps_;
  SystemCatalog systems_;
};

TEST_F(CounterSynthTest, NoiseSigmaOrdering) {
  // CPU PAPI < CUPTI < rocprofiler (the Fig. 3 mechanism).
  const double cpu = counter_noise_sigma(SystemId::kQuartz, Device::kCpu);
  const double cupti = counter_noise_sigma(SystemId::kLassen, Device::kGpu);
  const double rocm = counter_noise_sigma(SystemId::kCorona, Device::kGpu);
  EXPECT_LT(cpu, cupti);
  EXPECT_LT(cupti, rocm);
}

TEST_F(CounterSynthTest, GpuRunsRecordGpuCounters) {
  const auto& comd = apps_.get("CoMD");
  const auto rc = workload::make_run_config(comd, systems_.get("lassen"),
                                            ScaleClass::kOneNode);
  EXPECT_EQ(counter_device(rc), Device::kGpu);
  const auto rc_cpu = workload::make_run_config(apps_.get("SW4lite"),
                                                systems_.get("lassen"),
                                                ScaleClass::kOneNode);
  EXPECT_EQ(counter_device(rc_cpu), Device::kCpu);
}

TEST_F(CounterSynthTest, CountersReflectInstructionMix) {
  const auto& app = apps_.get("SW4lite");
  const auto& sys = systems_.get("quartz");
  const auto rc = workload::make_run_config(app, sys, ScaleClass::kOneNode);
  const auto tb = predict_time(app, 1.0, rc, sys);
  Rng rng(1);
  const CounterValues v = synthesize_counters(app, 1.0, rc, sys, tb, rng);
  const double total = get(v, CounterKind::kTotalInstructions);
  ASSERT_GT(total, 0.0);
  // Ratios should be close to the signature mix (within counter jitter).
  EXPECT_NEAR(get(v, CounterKind::kBranchInstructions) / total, app.cpu_mix.branch,
              0.01);
  EXPECT_NEAR(get(v, CounterKind::kLoadInstructions) / total, app.cpu_mix.load, 0.04);
  EXPECT_NEAR(get(v, CounterKind::kDpFpInstructions) / total, app.cpu_mix.dp_fp, 0.03);
}

TEST_F(CounterSynthTest, MissesAreOrderedByLevel) {
  const auto& app = apps_.get("miniFE");
  const auto& sys = systems_.get("quartz");
  const auto rc = workload::make_run_config(app, sys, ScaleClass::kOneNode);
  const auto tb = predict_time(app, 1.0, rc, sys);
  Rng rng(2);
  const CounterValues v = synthesize_counters(app, 1.0, rc, sys, tb, rng);
  EXPECT_GT(get(v, CounterKind::kL1LoadMisses), get(v, CounterKind::kL2LoadMisses));
  EXPECT_LT(get(v, CounterKind::kL1LoadMisses),
            get(v, CounterKind::kLoadInstructions));
}

TEST_F(CounterSynthTest, CountersNonNegativeAndKeyCountersPositive) {
  // FP-class counters may legitimately read ~0 for apps that execute no
  // instructions of that class; structural counters must be positive.
  for (const auto& app : apps_.all()) {
    for (const auto& sys : systems_.all()) {
      const auto rc = workload::make_run_config(app, sys, ScaleClass::kTwoNodes);
      const auto tb = predict_time(app, 2.0, rc, sys);
      Rng rng(3);
      const CounterValues v = synthesize_counters(app, 2.0, rc, sys, tb, rng);
      for (const double value : v) EXPECT_GE(value, 0.0) << app.name;
      for (const CounterKind key :
           {CounterKind::kTotalInstructions, CounterKind::kLoadInstructions,
            CounterKind::kBranchInstructions, CounterKind::kTotalCycles,
            CounterKind::kPageTableSize, CounterKind::kIoBytesRead}) {
        EXPECT_GT(get(v, key), 0.0) << app.name << " " << to_string(key);
      }
    }
  }
}

// ------------------------------------------------------------- profiler ----

class ProfilerTest : public ::testing::Test {
 protected:
  AppCatalog apps_;
  SystemCatalog systems_;
};

TEST_F(ProfilerTest, Deterministic) {
  const Profiler profiler(77);
  const auto& app = apps_.get("AMG");
  const auto inputs = workload::make_inputs(app, 2, 77);
  const RunProfile a =
      profiler.profile(app, inputs[0], ScaleClass::kOneNode, systems_.get("corona"));
  const RunProfile b =
      profiler.profile(app, inputs[0], ScaleClass::kOneNode, systems_.get("corona"));
  EXPECT_EQ(a.time_s, b.time_s);
  EXPECT_EQ(a.counters, b.counters);
}

TEST_F(ProfilerTest, DifferentSeedsGiveDifferentNoise) {
  const auto& app = apps_.get("AMG");
  const auto inputs = workload::make_inputs(app, 1, 77);
  const RunProfile a = Profiler(1).profile(app, inputs[0], ScaleClass::kOneNode,
                                           systems_.get("quartz"));
  const RunProfile b = Profiler(2).profile(app, inputs[0], ScaleClass::kOneNode,
                                           systems_.get("quartz"));
  EXPECT_NE(a.time_s, b.time_s);
  // The underlying model time is noise-free and identical.
  EXPECT_EQ(a.model_time_s, b.model_time_s);
}

TEST_F(ProfilerTest, MeasuredTimeNearModelTime) {
  const Profiler profiler(5);
  const auto& app = apps_.get("Nekbone");  // low-noise app
  const auto inputs = workload::make_inputs(app, 5, 5);
  for (const auto& input : inputs) {
    const RunProfile p =
        profiler.profile(app, input, ScaleClass::kOneNode, systems_.get("ruby"));
    EXPECT_GT(p.time_s, p.model_time_s * 0.85);
    EXPECT_LT(p.time_s, p.model_time_s * 1.15);
  }
}

TEST_F(ProfilerTest, IdFormat) {
  const Profiler profiler(5);
  const auto& app = apps_.get("CoMD");
  const auto inputs = workload::make_inputs(app, 1, 5);
  const RunProfile p =
      profiler.profile(app, inputs[0], ScaleClass::kTwoNodes, systems_.get("lassen"));
  EXPECT_EQ(p.id(), "CoMD/i00@lassen/2node");
}

// --------------------------------------------------------------- runner ----

TEST(Runner, RunInputCoversAllSystemsAndScales) {
  const AppCatalog apps;
  const SystemCatalog systems;
  const Profiler profiler(11);
  const auto& app = apps.get("SWFFT");
  const auto inputs = workload::make_inputs(app, 1, 11);
  const auto profiles = run_input(app, inputs[0], systems, profiler);
  ASSERT_EQ(profiles.size(), arch::kNumSystems * workload::kNumScaleClasses);
  // System-major, scale-minor order.
  EXPECT_EQ(profiles[0].system, SystemId::kQuartz);
  EXPECT_EQ(profiles[0].config.scale_class, ScaleClass::kOneCore);
  EXPECT_EQ(profiles[11].system, SystemId::kCorona);
  EXPECT_EQ(profiles[11].config.scale_class, ScaleClass::kTwoNodes);
}

TEST(Runner, CampaignShapeMatchesPaper) {
  const AppCatalog apps;
  const SystemCatalog systems;
  CampaignOptions options;
  options.inputs_per_app = 2;
  const auto profiles = run_campaign(apps, systems, options);
  EXPECT_EQ(profiles.size(), 20u * 2u * 4u * 3u);
}

TEST(Runner, CampaignParallelMatchesSerial) {
  const AppCatalog apps;
  const SystemCatalog systems;
  CampaignOptions options;
  options.inputs_per_app = 2;
  const auto serial = run_campaign(apps, systems, options);
  ThreadPool pool(4);
  const auto parallel = run_campaign(apps, systems, options, &pool);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].time_s, parallel[i].time_s);
    EXPECT_EQ(serial[i].app, parallel[i].app);
    EXPECT_EQ(serial[i].counters, parallel[i].counters);
  }
}

// ----------------------------------------------------- campaign shards ----

/// Exact per-profile equality (bit-identical doubles).
void expect_profiles_identical(const std::vector<RunProfile>& a,
                               const std::vector<RunProfile>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].app, b[i].app);
    EXPECT_EQ(a[i].input_index, b[i].input_index);
    EXPECT_EQ(a[i].input_scale, b[i].input_scale);
    EXPECT_EQ(a[i].system, b[i].system);
    EXPECT_EQ(a[i].device, b[i].device);
    EXPECT_EQ(a[i].config.scale_class, b[i].config.scale_class);
    EXPECT_EQ(a[i].config.nodes, b[i].config.nodes);
    EXPECT_EQ(a[i].time_s, b[i].time_s);
    EXPECT_EQ(a[i].model_time_s, b[i].model_time_s);
    EXPECT_EQ(a[i].breakdown.compute_s, b[i].breakdown.compute_s);
    EXPECT_EQ(a[i].breakdown.comm_s, b[i].breakdown.comm_s);
    EXPECT_EQ(a[i].counters, b[i].counters);
  }
}

class CampaignCheckpointTest : public ::testing::Test {
 protected:
  std::filesystem::path dir_;

  void SetUp() override {
    dir_ = std::filesystem::path(::testing::TempDir()) / "mphpc_campaign_ckpt" /
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
  }

  void TearDown() override { std::filesystem::remove_all(dir_); }
};

TEST_F(CampaignCheckpointTest, CacheReproducesProfilesBitIdentically) {
  const AppCatalog apps;
  const SystemCatalog systems;
  CampaignOptions plain;
  plain.inputs_per_app = 2;
  const auto reference = run_campaign(apps, systems, plain);

  CampaignOptions cached = plain;
  cached.checkpoint_dir = dir_.string();
  const auto first = run_campaign(apps, systems, cached);   // writes shards
  const auto second = run_campaign(apps, systems, cached);  // reads shards
  expect_profiles_identical(reference, first);
  expect_profiles_identical(reference, second);
  EXPECT_TRUE(std::filesystem::exists(dir_ / "manifest.txt"));
}

TEST_F(CampaignCheckpointTest, SecondRunActuallyReadsShards) {
  // Prove the reuse path is taken: tamper with one cached value and watch
  // it propagate into the next run's output. The manifest is reduced to
  // its header first (as an interrupted run leaves it), because a
  // recorded content hash would — correctly — reject the edited shard.
  const AppCatalog apps;
  const SystemCatalog systems;
  CampaignOptions options;
  options.inputs_per_app = 1;
  options.checkpoint_dir = dir_.string();
  const auto first = run_campaign(apps, systems, options);

  // Patch one shard: change its first profile's time field to 999.25
  // (parseable, positive, and unmistakable).
  std::filesystem::path shard;
  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    if (entry.path().extension() == ".shard") {
      shard = entry.path();
      break;
    }
  }
  ASSERT_FALSE(shard.empty());
  std::vector<std::string> lines;
  {
    std::ifstream in(shard);
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
  }
  for (auto& line : lines) {
    if (line.rfind("p ", 0) == 0) {
      std::istringstream ss(line);
      std::vector<std::string> tokens;
      std::string tok;
      while (ss >> tok) tokens.push_back(tok);
      ASSERT_GE(tokens.size(), 11u);
      tokens[10] = "999.25";  // time_s
      line.clear();
      for (std::size_t t = 0; t < tokens.size(); ++t) {
        line += (t == 0 ? "" : " ") + tokens[t];
      }
      break;  // first profile of this shard only
    }
  }
  std::string patched;
  for (const auto& line : lines) patched += line + "\n";
  { std::ofstream out(shard); out << patched; }

  // Keep only the manifest header: shards without a recorded hash are
  // accepted on parse alone (the partial-campaign resume path).
  {
    std::ifstream in(dir_ / "manifest.txt");
    std::string line;
    std::string header;
    for (int n = 0; n < 3 && std::getline(in, line); ++n) header += line + "\n";
    in.close();
    std::ofstream out(dir_ / "manifest.txt");
    out << header;
  }

  const auto second = run_campaign(apps, systems, options);
  bool saw_patched = false;
  for (const auto& profile : second) saw_patched |= profile.time_s == 999.25;
  EXPECT_TRUE(saw_patched);  // the cache, not the profiler, produced this
}

TEST_F(CampaignCheckpointTest, HashMismatchedShardIsReProfiled) {
  // A shard whose content no longer matches the hash recorded in the
  // manifest must be re-profiled, even though it still parses cleanly.
  const AppCatalog apps;
  const SystemCatalog systems;
  CampaignOptions options;
  options.inputs_per_app = 1;
  options.checkpoint_dir = dir_.string();
  const auto first = run_campaign(apps, systems, options);

  std::filesystem::path shard;
  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    if (entry.path().extension() == ".shard") {
      shard = entry.path();
      break;
    }
  }
  ASSERT_FALSE(shard.empty());
  std::vector<std::string> lines;
  {
    std::ifstream in(shard);
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
  }
  for (auto& line : lines) {
    if (line.rfind("p ", 0) == 0) {
      std::istringstream ss(line);
      std::vector<std::string> tokens;
      std::string tok;
      while (ss >> tok) tokens.push_back(tok);
      ASSERT_GE(tokens.size(), 11u);
      tokens[10] = "999.25";  // parseable and positive — only the hash catches it
      line.clear();
      for (std::size_t t = 0; t < tokens.size(); ++t) {
        line += (t == 0 ? "" : " ") + tokens[t];
      }
      break;
    }
  }
  std::string patched;
  for (const auto& line : lines) patched += line + "\n";
  { std::ofstream out(shard); out << patched; }

  const auto second = run_campaign(apps, systems, options);
  for (const auto& profile : second) EXPECT_NE(profile.time_s, 999.25);
  expect_profiles_identical(first, second);
}

TEST_F(CampaignCheckpointTest, CorruptShardIsReProfiledNotTrusted) {
  const AppCatalog apps;
  const SystemCatalog systems;
  CampaignOptions options;
  options.inputs_per_app = 1;
  options.checkpoint_dir = dir_.string();
  const auto first = run_campaign(apps, systems, options);

  // Truncate every shard; the next run must silently re-profile and still
  // return the exact same results.
  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    if (entry.path().extension() == ".shard") {
      std::ofstream out(entry.path());
      out << "mphpc-shard v1\ngarbage\n";
    }
  }
  const auto second = run_campaign(apps, systems, options);
  expect_profiles_identical(first, second);
}

TEST_F(CampaignCheckpointTest, ManifestMismatchInvalidatesCache) {
  const AppCatalog apps;
  const SystemCatalog systems;
  CampaignOptions options;
  options.inputs_per_app = 1;
  options.seed = 5;
  options.checkpoint_dir = dir_.string();
  (void)run_campaign(apps, systems, options);

  // Different seed -> different campaign; stale shards must not be read.
  CampaignOptions changed = options;
  changed.seed = 6;
  const auto fresh = run_campaign(apps, systems, changed);
  CampaignOptions plain = changed;
  plain.checkpoint_dir.clear();
  const auto reference = run_campaign(apps, systems, plain);
  expect_profiles_identical(reference, fresh);

  // And the manifest now reflects the new campaign: a rerun of the *old*
  // campaign re-profiles rather than reading the new shards.
  const auto old_again = run_campaign(apps, systems, options);
  CampaignOptions old_plain = options;
  old_plain.checkpoint_dir.clear();
  expect_profiles_identical(run_campaign(apps, systems, old_plain), old_again);
}

TEST_F(CampaignCheckpointTest, ParallelCampaignUsesCacheIdentically) {
  const AppCatalog apps;
  const SystemCatalog systems;
  CampaignOptions options;
  options.inputs_per_app = 2;
  options.checkpoint_dir = dir_.string();
  const auto serial = run_campaign(apps, systems, options);
  ThreadPool pool(4);
  const auto parallel = run_campaign(apps, systems, options, &pool);
  expect_profiles_identical(serial, parallel);
}

TEST(Runner, DefaultCampaignMatchesPaperRowCount) {
  // 20 x 47 x 3 x 4 = 11,280 (paper reports 11,312; see DESIGN.md).
  const CampaignOptions options;
  EXPECT_EQ(20 * options.inputs_per_app * 3 * 4, 11280);
}

}  // namespace
}  // namespace mphpc::sim
